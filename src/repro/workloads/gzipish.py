"""gzipish — LZ77 hash-chain compressor (SPEC gzip stand-in).

Contains the paper's Figure 7 idiom verbatim: a ``config_table`` indexed by
the compression level (``arg(0)``) supplies ``max_chain``, which bounds the
hash-chain walk via a do-while loop whose exit branch is input-dependent on
the compression level; data redundancy drives the match/literal branches.
"""

from __future__ import annotations

from repro.vm.inputs import InputSet
from repro.workloads.base import Workload
from repro.workloads.inputs import (
    graphic_like,
    program_like,
    random_bytes,
    repetitive,
    scaled,
    text_like,
    video_like,
)

SOURCE = r"""
// LZ77 hash-chain compressor in the style of gzip's deflate.
// arg(0) = pack_level in [1, 9]; input = byte stream.

global WSIZE = 8192;
global WMASK = 8191;
global HASH_MASK = 4095;
global MAX_MATCH = 32;
global MIN_MATCH = 3;

global window[131072];
global head[4096];
global prev[8192];

// config_table[pack_level] = {good_length, max_lazy, nice_length, max_chain}
global config_good[10];
global config_lazy[10];
global config_nice[10];
global config_chain[10];

global match_start = 0;

func init_config() {
    // level:            1   2   3   4   5   6   7   8   9
    config_good[1] = 4;  config_lazy[1] = 4;   config_nice[1] = 8;   config_chain[1] = 4;
    config_good[2] = 4;  config_lazy[2] = 5;   config_nice[2] = 16;  config_chain[2] = 8;
    config_good[3] = 4;  config_lazy[3] = 6;   config_nice[3] = 32;  config_chain[3] = 32;
    config_good[4] = 4;  config_lazy[4] = 4;   config_nice[4] = 16;  config_chain[4] = 16;
    config_good[5] = 8;  config_lazy[5] = 16;  config_nice[5] = 32;  config_chain[5] = 32;
    config_good[6] = 8;  config_lazy[6] = 16;  config_nice[6] = 64;  config_chain[6] = 64;
    config_good[7] = 8;  config_lazy[7] = 32;  config_nice[7] = 64;  config_chain[7] = 128;
    config_good[8] = 32; config_lazy[8] = 64;  config_nice[8] = 128; config_chain[8] = 256;
    config_good[9] = 32; config_lazy[9] = 64;  config_nice[9] = 128; config_chain[9] = 512;
}

func hash3(pos) {
    return ((window[pos] << 10) ^ (window[pos + 1] << 5) ^ window[pos + 2]) & HASH_MASK;
}

// Find the longest match for the string at `pos`; returns its length and
// stores its start in `match_start`.  The chain walk mirrors gzip's
// longest_match: the do-while exit branch depends on max_chain (the
// compression level) and on the data's redundancy -- the paper's
// input-dependent loop-exit branch.
func longest_match(pos, n, max_chain, nice_length, prev_length) {
    var chain_length = max_chain;
    var limit = pos - WSIZE + 1;
    if (limit < 1) { limit = 1; }
    var best_len = prev_length;
    var cur = head[hash3(pos)];
    var max_len = n - pos;
    if (max_len > MAX_MATCH) { max_len = MAX_MATCH; }
    if (cur < limit) { return best_len; }
    do {
        var m = cur - 1;
        // Quick reject: check the byte that would extend the best match.
        if (m + best_len < n && window[m + best_len] == window[pos + best_len]) {
            var len = 0;
            while (len < max_len && window[m + len] == window[pos + len]) {
                len += 1;
            }
            if (len > best_len) {
                best_len = len;
                match_start = m;
                if (len >= nice_length) {
                    return best_len;
                }
            }
        }
        cur = prev[m & WMASK];
        chain_length -= 1;
    } while (cur >= limit && chain_length != 0);   // Fig. 7's exit branch
    return best_len;
}

func insert_string(pos) {
    var h = hash3(pos);
    prev[pos & WMASK] = head[h];
    head[h] = pos + 1;
}

func main() {
    init_config();
    var pack_level = arg(0);
    if (pack_level < 1) { pack_level = 1; }
    if (pack_level > 9) { pack_level = 9; }
    var max_chain = config_chain[pack_level];
    var nice_length = config_nice[pack_level];
    var max_lazy = config_lazy[pack_level];
    var good_length = config_good[pack_level];

    var n = input_len();
    if (n > 131072) { n = 131072; }
    var i;
    for (i = 0; i < n; i += 1) { window[i] = input(i); }

    var literals = 0;
    var matches = 0;
    var match_bytes = 0;
    var pos = 0;
    var prev_length = 0;
    var prev_start = 0;
    var have_prev = 0;

    while (pos + MIN_MATCH < n) {
        var chain = max_chain;
        if (prev_length >= good_length) {
            chain = chain >> 2;   // gzip: reduce effort after a good match
        }
        var len = longest_match(pos, n, chain, nice_length, MIN_MATCH - 1);
        insert_string(pos);

        if (have_prev && prev_length >= MIN_MATCH && prev_length >= len) {
            // Emit the deferred (lazy) match.
            matches += 1;
            match_bytes += prev_length;
            var stop = pos + prev_length - 1;
            if (stop > n - MIN_MATCH) { stop = n - MIN_MATCH; }
            while (pos + 1 < stop) {
                pos += 1;
                insert_string(pos);
            }
            pos += 1;
            have_prev = 0;
            prev_length = 0;
        } else {
            if (have_prev) {
                literals += 1;   // Previous byte goes out as a literal.
            }
            if (len >= MIN_MATCH && len < max_lazy) {
                // Defer: maybe the next position matches longer.
                prev_length = len;
                prev_start = match_start;
                have_prev = 1;
                pos += 1;
            } else if (len >= MIN_MATCH) {
                matches += 1;
                match_bytes += len;
                var stop2 = pos + len - 1;
                if (stop2 > n - MIN_MATCH) { stop2 = n - MIN_MATCH; }
                while (pos + 1 < stop2) {
                    pos += 1;
                    insert_string(pos);
                }
                pos += 1;
                have_prev = 0;
                prev_length = 0;
            } else {
                literals += 1;
                have_prev = 0;
                prev_length = 0;
                pos += 1;
            }
        }
    }

    output(literals);
    output(matches);
    output(match_bytes);
    return literals + matches;
}
"""

_BASE = 16_000


def _make(name: str, generator, seed: int, level: int, size: int = _BASE):
    def factory(scale: float) -> InputSet:
        return InputSet.make(name, data=generator(scaled(size, scale, minimum=256), seed), args=[level])

    return factory


WORKLOAD = Workload(
    name="gzipish",
    description="LZ77 hash-chain compressor; compression level and data "
    "redundancy drive the Fig. 7 loop-exit branch",
    source=SOURCE,
    deep=True,
    inputs={
        # SPEC gzip runs each input at several levels; we pick one level per
        # input set so the *pair* (data, level) is the input, like the paper's
        # "input-dependent on the input parameter that specifies the
        # compression level".
        "train": _make("train", text_like, seed=101, level=4),
        "ref": _make("ref", program_like, seed=202, level=9),
        "ext-1": _make("ext-1", repetitive, seed=303, level=6),       # input.log
        "ext-2": _make("ext-2", graphic_like, seed=404, level=6),     # input.graphic
        "ext-3": _make("ext-3", random_bytes, seed=505, level=9),     # input.random
        "ext-4": _make("ext-4", program_like, seed=606, level=1),     # input.program
        "ext-5": _make("ext-5", video_like, seed=707, level=6),       # 166.i-ish
        "ext-6": _make("ext-6", text_like, seed=808, level=9),        # big text
    },
)
