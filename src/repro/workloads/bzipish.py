"""bzipish — block-sorting-style compressor front end (SPEC bzip2 stand-in).

Implements the branch-heavy stages of bzip2's pipeline on byte blocks:
run-length encoding, move-to-front transform, and an adaptive
frequency-model coder.  Symbol locality and run structure of the input data
drive the MTF search-depth and RLE branches — bzip2 tops the paper's
input-dependent list because these properties differ sharply between data
kinds (text vs. already-compressed vs. graphic).
"""

from __future__ import annotations

from repro.vm.inputs import InputSet
from repro.workloads.base import Workload
from repro.workloads.inputs import (
    graphic_like,
    program_like,
    random_bytes,
    scaled,
    text_like,
    video_like,
)

SOURCE = r"""
// RLE + move-to-front + adaptive frequency coding over fixed-size blocks.
// arg(0) = block size; input = byte stream.

global mtf[256];
global freq[256];
global rle_buf[70000];

func mtf_init() {
    var i;
    for (i = 0; i < 256; i += 1) { mtf[i] = i; }
}

// Move-to-front: returns the position of `sym`, then moves it to front.
// The search-depth loop branch is strongly data-dependent: local data
// (text) finds symbols near the front; random data searches deep.
func mtf_encode(sym) {
    var j = 0;
    while (mtf[j] != sym) {
        j += 1;
    }
    var k = j;
    while (k > 0) {
        mtf[k] = mtf[k - 1];
        k -= 1;
    }
    mtf[0] = sym;
    return j;
}

// bzip2-style RLE1: runs of 4-255 identical bytes become 4 bytes + count.
func rle_pass(start, stop) {
    var out = 0;
    var pos = start;
    while (pos < stop) {
        var b = input(pos);
        var run = 1;
        while (pos + run < stop && run < 255 && input(pos + run) == b) {
            run += 1;
        }
        if (run >= 4) {
            rle_buf[out] = b; rle_buf[out + 1] = b;
            rle_buf[out + 2] = b; rle_buf[out + 3] = b;
            rle_buf[out + 4] = run - 4;
            out += 5;
        } else {
            var r;
            for (r = 0; r < run; r += 1) {
                rle_buf[out] = b;
                out += 1;
            }
        }
        pos += run;
    }
    return out;
}

// Adaptive frequency model: cost of a symbol ~ how rare it currently is.
func model_cost(sym) {
    var f = freq[sym];
    freq[sym] = f + 16;
    // Periodic rescale keeps frequencies bounded.
    if (freq[sym] > 60000) {
        var i;
        for (i = 0; i < 256; i += 1) {
            freq[i] = (freq[i] >> 1) | 1;
        }
    }
    var cost = 1;
    var budget = 65536;
    while (budget > f && cost < 16) {     // rarer symbol -> more "bits"
        budget = budget >> 1;
        cost += 1;
    }
    return cost;
}

func main() {
    mtf_init();
    var i;
    for (i = 0; i < 256; i += 1) { freq[i] = 1; }

    var block = arg(0);
    if (block < 256) { block = 256; }
    var n = input_len();
    var total_bits = 0;
    var zero_runs = 0;
    var deep_searches = 0;

    var start = 0;
    while (start < n) {
        var stop = start + block;
        if (stop > n) { stop = n; }
        var rle_len = rle_pass(start, stop);

        // MTF + model over the RLE output.
        var j;
        var zrun = 0;
        for (j = 0; j < rle_len; j += 1) {
            var rank = mtf_encode(rle_buf[j]);
            if (rank == 0) {
                zrun += 1;            // bzip2's RUNA/RUNB zero-run coding
            } else {
                if (zrun > 0) {
                    zero_runs += 1;
                    total_bits += model_cost(0);
                    zrun = 0;
                }
                if (rank > 64) {
                    deep_searches += 1;
                }
                total_bits += model_cost(rank & 255);
            }
        }
        if (zrun > 0) {
            zero_runs += 1;
            total_bits += model_cost(0);
        }
        start = stop;
    }

    output(total_bits);
    output(zero_runs);
    output(deep_searches);
    return total_bits;
}
"""

_BASE = 8_000


def _make(name: str, generator, seed: int, block: int, size: int = _BASE):
    def factory(scale: float) -> InputSet:
        return InputSet.make(name, data=generator(scaled(size, scale, minimum=512), seed), args=[block])

    return factory


WORKLOAD = Workload(
    name="bzipish",
    description="RLE + move-to-front + adaptive model compressor; symbol "
    "locality drives the MTF search branches",
    source=SOURCE,
    deep=True,
    inputs={
        "train": _make("train", video_like, seed=13, block=2048, size=4_500),     # input.compressed
        "ref": _make("ref", program_like, seed=29, block=4096),       # input.source
        "ext-1": _make("ext-1", graphic_like, seed=37, block=4096),   # input.graphic
        "ext-2": _make("ext-2", program_like, seed=41, block=2048),   # spec gcc output
        "ext-3": _make("ext-3", text_like, seed=53, block=8192),      # 11MB text file
        "ext-4": _make("ext-4", random_bytes, seed=67, block=4096, size=4_500),   # 3.8MB video file
    },
)
