"""craftyish — alpha-beta game-tree search (SPEC crafty stand-in).

Searches a two-player capture game on a 6x6 board with negamax +
alpha-beta pruning and a small evaluation function.  Cutoff branches,
legal-move checks, and evaluation comparisons all depend on the initial
board layout — the paper built crafty's extra input sets exactly this way
("constructed by modifying the initial layout of the chess board").
"""

from __future__ import annotations

from repro.vm.inputs import InputSet
from repro.workloads.base import Workload
from repro.workloads.inputs import board_layout

SOURCE = r"""
// Negamax with alpha-beta on a 6x6 capture game.
// Board cells: 0 empty, 1 player A piece, 2 player B piece.
// A move slides a piece one step in one of 4 directions; moving onto an
// opposing piece captures it.  Score = material + mobility.
// input = 36 board cells; arg(0) = search depth, arg(1) = searches to run.

global board[36];
global nodes = 0;
global cutoffs = 0;

func eval_board(side) {
    var score = 0;
    var i;
    for (i = 0; i < 36; i += 1) {
        var v = board[i];
        if (v == side) {
            score += 10;
            // Central squares are worth more (positional term).
            var x = i % 6;
            var y = i / 6;
            if (x > 0 && x < 5 && y > 0 && y < 5) {
                score += 2;
            }
        } else if (v != 0) {
            score -= 10;
        }
    }
    return score;
}

func opponent(side) {
    if (side == 1) { return 2; }
    return 1;
}

// dir: 0 = +x, 1 = -x, 2 = +y, 3 = -y.  Returns target cell or -1.
func move_target(from, dir) {
    var x = from % 6;
    var y = from / 6;
    if (dir == 0) {
        if (x == 5) { return -1; }
        return from + 1;
    }
    if (dir == 1) {
        if (x == 0) { return -1; }
        return from - 1;
    }
    if (dir == 2) {
        if (y == 5) { return -1; }
        return from + 6;
    }
    if (y == 0) { return -1; }
    return from - 6;
}

func negamax(side, depth, alpha, beta) {
    nodes += 1;
    if (depth == 0) {
        return eval_board(side);
    }
    var best = -100000;
    var moved = 0;
    var from;
    for (from = 0; from < 36; from += 1) {
        if (board[from] != side) { continue; }
        var dir;
        for (dir = 0; dir < 4; dir += 1) {
            var to = move_target(from, dir);
            if (to < 0) { continue; }
            var captured = board[to];
            if (captured == side) { continue; }      // blocked by own piece
            // Make the move.
            board[to] = side;
            board[from] = 0;
            moved = 1;
            var score = 0 - negamax(opponent(side), depth - 1, 0 - beta, 0 - alpha);
            if (captured != 0) { score += 8; }       // prefer captures
            // Unmake.
            board[from] = side;
            board[to] = captured;
            if (score > best) { best = score; }
            if (best > alpha) { alpha = best; }
            if (alpha >= beta) {                     // beta cutoff
                cutoffs += 1;
                return best;
            }
        }
    }
    if (moved == 0) {
        return eval_board(side);                     // no legal moves
    }
    return best;
}

func main() {
    var depth = arg(0);
    var searches = arg(1);
    var i;
    for (i = 0; i < 36; i += 1) { board[i] = input(i); }

    var total = 0;
    var s;
    srand(4242);
    for (s = 0; s < searches; s += 1) {
        total += negamax(1, depth, -100000, 100000);
        // Perturb the position a little between searches (self-play-ish):
        // move one random A piece toward the centre if possible.
        var tries = 0;
        while (tries < 16) {
            var cell = rand() % 36;
            if (board[cell] == 1) {
                var target = move_target(cell, rand() % 4);
                if (target >= 0 && board[target] == 0) {
                    board[target] = 1;
                    board[cell] = 0;
                    break;
                }
            }
            tries += 1;
        }
    }

    output(total);
    output(nodes);
    output(cutoffs);
    return nodes;
}
"""


def _make(name: str, seed: int, pieces: int, depth: int, searches: int):
    def factory(scale: float) -> InputSet:
        # Depth stays fixed (search cost is exponential in it); the number
        # of root searches scales.
        count = max(2, int(searches * scale))
        return InputSet.make(name, data=board_layout(36, pieces, seed), args=[depth, count])

    return factory


WORKLOAD = Workload(
    name="craftyish",
    description="alpha-beta capture-game search; board layouts change "
    "cutoff and legality branch behaviour",
    source=SOURCE,
    deep=True,
    inputs={
        "train": _make("train", seed=5, pieces=10, depth=3, searches=10),
        "ref": _make("ref", seed=17, pieces=16, depth=3, searches=10),
        "ext-1": _make("ext-1", seed=29, pieces=6, depth=3, searches=12),
        "ext-2": _make("ext-2", seed=41, pieces=22, depth=3, searches=8),
        "ext-3": _make("ext-3", seed=59, pieces=12, depth=3, searches=10),
        "ext-4": _make("ext-4", seed=71, pieces=18, depth=3, searches=9),
        "ext-5": _make("ext-5", seed=83, pieces=4, depth=3, searches=14),
        "ext-6": _make("ext-6", seed=97, pieces=14, depth=3, searches=10),
    },
)
