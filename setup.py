"""Shim so legacy `setup.py develop` works in offline environments
that lack the `wheel` package (PEP 660 editable installs need it)."""
from setuptools import setup

setup()
