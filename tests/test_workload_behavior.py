"""Behavioural tests of individual workloads.

Beyond "it runs": each workload's *branch-relevant mechanism* — the thing
that makes it a stand-in for its SPEC counterpart — is checked directly
through program outputs and trace statistics.
"""


from repro.trace import capture_trace
from repro.trace.ops import bias_divergence, site_stream
from repro.vm import InputSet, Machine
from repro.workloads import get_workload

TINY = 0.05


def run(workload_name, input_name, scale=TINY):
    wl = get_workload(workload_name)
    machine = Machine(wl.program())
    return machine.run(wl.make_input(input_name, scale))


class TestBzipish:
    def test_outputs_are_bits_runs_searches(self):
        result = run("bzipish", "train")
        total_bits, zero_runs, deep_searches = result.output
        assert total_bits > 0

    def test_random_data_searches_deeper_than_structured(self):
        # MTF rank distribution: random bytes search deep, skewed text
        # finds symbols near the front.
        wl = get_workload("bzipish")
        machine = Machine(wl.program())
        random_run = machine.run(wl.make_input("ext-4", TINY))   # random bytes
        text_run = machine.run(wl.make_input("ext-3", TINY))     # text
        assert random_run.output[2] > text_run.output[2]


class TestGzipish:
    def test_repetitive_data_compresses_better(self):
        wl = get_workload("gzipish")
        machine = Machine(wl.program())
        repetitive = machine.run(wl.make_input("ext-1", TINY))   # log-like
        random_data = machine.run(wl.make_input("ext-3", TINY))  # random
        # matches / (literals + matches): repetitive data matches far more.
        def match_rate(result):
            literals, matches, _bytes = result.output
            return matches / max(1, literals + matches)
        assert match_rate(repetitive) > match_rate(random_data) * 2

    def test_chain_walk_branch_bias_depends_on_level(self):
        wl = get_workload("gzipish")
        program = wl.program()
        base = wl.make_input("train", TINY)
        trace_low = capture_trace(program, InputSet.make("t", data=base.data, args=[1]))
        trace_high = capture_trace(program, InputSet.make("t", data=base.data, args=[9]))
        divergence = bias_divergence(trace_low, trace_high, min_executions=20)
        # Some branch in longest_match shifts bias with the level.
        match_sites = {s.site_id for s in program.sites_in_function("longest_match")}
        assert any(divergence.get(site, 0) > 0.02 for site in match_sites)


class TestTwolfish:
    def test_annealing_accepts_then_rejects(self):
        result = run("twolfish", "train", scale=0.2)
        accepted, uphill, rejected, final_cost = result.output
        assert accepted > 0 and rejected > 0
        assert uphill <= accepted
        assert final_cost > 0

    def test_acceptance_branch_has_phases(self):
        # The uphill-acceptance branch's bias falls as temperature drops:
        # compare taken rate in the first vs last third of its stream.
        wl = get_workload("twolfish")
        program = wl.program()
        trace = capture_trace(program, wl.make_input("train", 0.2))
        # Find the acceptance branch: in main, strongly time-varying.
        best_shift, found = 0.0, False
        for site in program.sites_in_function("main"):
            stream = site_stream(trace, site.site_id)
            if len(stream) < 300:
                continue
            third = len(stream) // 3
            early = float(stream[:third].mean())
            late = float(stream[-third:].mean())
            best_shift = max(best_shift, abs(early - late))
        assert best_shift > 0.1, "no cooling-schedule phase behaviour found"


class TestGapish:
    def test_int_vs_big_op_mix_tracks_big_fraction(self):
        fractions = {}
        for input_name in ("ext-2", "ref", "ext-1"):  # 2%, 50%, 95% big
            result = run("gapish", input_name)
            int_ops, big_ops, _checksum = result.output
            fractions[input_name] = big_ops / max(1, int_ops + big_ops)
        assert fractions["ext-2"] < fractions["ref"] < fractions["ext-1"]


class TestCraftyish:
    def test_search_statistics(self):
        result = run("craftyish", "train")
        total, nodes, cutoffs = result.output
        assert nodes > 100
        assert 0 < cutoffs < nodes

    def test_board_density_changes_search(self):
        sparse = run("craftyish", "ext-5")  # 4 pieces
        dense = run("craftyish", "ext-2")   # 22 pieces
        # Denser boards give wider trees: more nodes per search.
        assert dense.output[1] != sparse.output[1]


class TestParserish:
    def test_parses_mostly_cleanly(self):
        result = run("parserish", "train")
        checksum, sentences, errors, depth = result.output
        assert sentences > 10
        assert errors < sentences  # Error rate is low by construction.

    def test_ref_nests_deeper(self):
        train_depth = run("parserish", "train", scale=0.2).output[3]
        ref_depth = run("parserish", "ref", scale=0.2).output[3]
        assert ref_depth >= train_depth


class TestMcfish:
    def test_relaxation_converges(self):
        result = run("mcfish", "train")
        sweeps, total_relaxed, admissible, reachable, checksum = result.output
        assert sweeps >= 2
        assert reachable > 1
        assert total_relaxed >= reachable - 1  # At least tree edges relaxed.


class TestGccish:
    def test_passes_do_work(self):
        result = run("gccish", "train")
        folded, simplified, cse_hits, removed, spills = result.output
        assert folded > 0           # Constant propagation fires.
        assert removed > 0          # DCE finds dead code.
        assert cse_hits >= 0

    def test_imm_heavy_input_folds_more(self):
        # ext-1 is immediate-heavy with high reuse: constprop folds a lot.
        wl = get_workload("gccish")
        machine = Machine(wl.program())
        imm_heavy = machine.run(wl.make_input("ext-1", TINY))
        imm_light = machine.run(wl.make_input("ext-4", TINY))
        # output(folded) inside constprop is output[0].
        folded_heavy = imm_heavy.output[0] / max(1, len(wl.make_input("ext-1", TINY).data))
        folded_light = imm_light.output[0] / max(1, len(wl.make_input("ext-4", TINY).data))
        assert folded_heavy > folded_light

    def test_fewer_registers_more_spills(self):
        # ref runs with 6 physical registers vs train's 12.
        train = run("gccish", "train")
        ref = run("gccish", "ref")
        assert ref.output[3] >= 0 and train.output[3] >= 0


class TestVprish:
    def test_routing_statistics(self):
        result = run("vprish", "train", scale=0.3)
        routed, failed, wirelength = result.output
        assert routed > 0
        assert wirelength >= routed  # Each routed net is >= 1 step.

    def test_dense_obstacles_fail_more(self):
        train = run("vprish", "train", scale=0.3)  # 10% obstacles, local nets
        ref = run("vprish", "ref", scale=0.3)      # 25% obstacles, global nets
        train_fail_rate = train.output[1] / max(1, train.output[0] + train.output[1])
        ref_fail_rate = ref.output[1] / max(1, ref.output[0] + ref.output[1])
        assert ref_fail_rate >= train_fail_rate


class TestVortexish:
    def test_transaction_accounting(self):
        result = run("vortexish", "train")
        inserts, hits, misses, deletes, ranged = result.output
        assert inserts > 0
        assert hits + misses > 0

    def test_skewed_keys_hit_more(self):
        train = run("vortexish", "train")  # skew 0.2, small key space
        ref = run("vortexish", "ref")      # skew 0.7, huge key space
        def hit_rate(result):
            _ins, hits, misses, _del, _rng = result.output
            return hits / max(1, hits + misses)
        # Both mechanisms matter; just check rates are distinct and sane.
        assert 0.0 <= hit_rate(train) <= 1.0
        assert abs(hit_rate(train) - hit_rate(ref)) > 0.02


class TestPerlish:
    def test_matching_statistics(self):
        result = run("perlish", "train")
        matches, lines, substitutions = result.output
        assert lines > 10
        assert 0 < matches <= lines * 3  # 3 patterns per run.

    def test_different_selector_changes_matches(self):
        train = run("perlish", "train")
        ref = run("perlish", "ref")
        # Same pattern set rotated; different text: counts differ.
        assert train.output[0] != ref.output[0]


class TestEonish:
    def test_ray_statistics(self):
        result = run("eonish", "train")
        hits, lost, shade = result.output
        assert hits > 0 and lost > 0
        assert shade >= hits  # Each hit shades >= 1.

    def test_branch_behaviour_stable_across_scenes(self):
        # eon's signature: scene changes barely move branch biases.
        wl = get_workload("eonish")
        program = wl.program()
        train_trace = capture_trace(program, wl.make_input("train", 0.3))
        ref_trace = capture_trace(program, wl.make_input("ref", 0.3))
        divergence = bias_divergence(train_trace, ref_trace, min_executions=50)
        if divergence:
            big_moves = sum(1 for d in divergence.values() if d > 0.10)
            assert big_moves <= len(divergence) // 3
