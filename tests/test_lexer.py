"""Unit tests for the Minic lexer."""

import pytest

from repro.errors import LexError
from repro.lang.lexer import tokenize
from repro.lang.tokens import TokenKind


def kinds(source):
    return [t.kind for t in tokenize(source)]


def texts(source):
    return [t.text for t in tokenize(source)[:-1]]


class TestBasicTokens:
    def test_empty_source_yields_only_eof(self):
        assert kinds("") == [TokenKind.EOF]

    def test_whitespace_only_yields_only_eof(self):
        assert kinds("  \t\n  \r\n") == [TokenKind.EOF]

    def test_decimal_integer(self):
        token = tokenize("12345")[0]
        assert token.kind is TokenKind.INT
        assert token.value == 12345

    def test_hex_integer(self):
        token = tokenize("0xFF")[0]
        assert token.value == 255

    def test_hex_integer_lowercase(self):
        assert tokenize("0xdeadbeef")[0].value == 0xDEADBEEF

    def test_zero(self):
        assert tokenize("0")[0].value == 0

    def test_identifier(self):
        token = tokenize("foo_bar99")[0]
        assert token.kind is TokenKind.IDENT
        assert token.text == "foo_bar99"

    def test_identifier_with_leading_underscore(self):
        assert tokenize("_tmp")[0].kind is TokenKind.IDENT

    @pytest.mark.parametrize("word,kind", [
        ("func", TokenKind.KW_FUNC),
        ("var", TokenKind.KW_VAR),
        ("global", TokenKind.KW_GLOBAL),
        ("if", TokenKind.KW_IF),
        ("else", TokenKind.KW_ELSE),
        ("while", TokenKind.KW_WHILE),
        ("do", TokenKind.KW_DO),
        ("for", TokenKind.KW_FOR),
        ("return", TokenKind.KW_RETURN),
        ("break", TokenKind.KW_BREAK),
        ("continue", TokenKind.KW_CONTINUE),
    ])
    def test_keywords(self, word, kind):
        assert tokenize(word)[0].kind is kind

    def test_keyword_prefix_is_identifier(self):
        assert tokenize("iffy")[0].kind is TokenKind.IDENT
        assert tokenize("format")[0].kind is TokenKind.IDENT


class TestOperators:
    @pytest.mark.parametrize("text,kind", [
        ("+", TokenKind.PLUS), ("-", TokenKind.MINUS), ("*", TokenKind.STAR),
        ("/", TokenKind.SLASH), ("%", TokenKind.PERCENT),
        ("<<", TokenKind.SHL), (">>", TokenKind.SHR),
        ("<", TokenKind.LT), ("<=", TokenKind.LE),
        (">", TokenKind.GT), (">=", TokenKind.GE),
        ("==", TokenKind.EQ), ("!=", TokenKind.NE),
        ("&&", TokenKind.ANDAND), ("||", TokenKind.OROR),
        ("&", TokenKind.AMP), ("|", TokenKind.PIPE), ("^", TokenKind.CARET),
        ("~", TokenKind.TILDE), ("!", TokenKind.BANG),
        ("=", TokenKind.ASSIGN), ("+=", TokenKind.PLUS_ASSIGN),
        ("<<=", TokenKind.SHL_ASSIGN), (">>=", TokenKind.SHR_ASSIGN),
    ])
    def test_single_operator(self, text, kind):
        assert kinds(text) == [kind, TokenKind.EOF]

    def test_maximal_munch_shift_vs_compare(self):
        assert kinds("a<<b")[1] is TokenKind.SHL
        assert kinds("a< <b")[1] is TokenKind.LT

    def test_maximal_munch_compound_assign(self):
        assert kinds("x<<=2")[1] is TokenKind.SHL_ASSIGN

    def test_adjacent_operators(self):
        assert kinds("a==-b")[1:3] == [TokenKind.EQ, TokenKind.MINUS]

    def test_not_equal_vs_bang(self):
        assert kinds("!a != b")[0] is TokenKind.BANG
        assert kinds("!a != b")[2] is TokenKind.NE


class TestComments:
    def test_line_comment_is_skipped(self):
        assert texts("a // comment here\n b") == ["a", "b"]

    def test_line_comment_at_eof(self):
        assert texts("a // no newline") == ["a"]

    def test_block_comment_is_skipped(self):
        assert texts("a /* stuff \n more */ b") == ["a", "b"]

    def test_nested_star_in_block_comment(self):
        assert texts("a /* ** * */ b") == ["a", "b"]

    def test_unterminated_block_comment_raises(self):
        with pytest.raises(LexError, match="unterminated"):
            tokenize("a /* never ends")


class TestPositions:
    def test_line_and_column_tracking(self):
        tokens = tokenize("a\n  b")
        assert (tokens[0].line, tokens[0].column) == (1, 1)
        assert (tokens[1].line, tokens[1].column) == (2, 3)

    def test_column_after_comment(self):
        tokens = tokenize("/* x */ y")
        assert tokens[0].column == 9


class TestErrors:
    def test_unexpected_character(self):
        with pytest.raises(LexError, match="unexpected character"):
            tokenize("a $ b")

    def test_error_carries_position(self):
        with pytest.raises(LexError) as excinfo:
            tokenize("ab\n  @")
        assert excinfo.value.line == 2
        assert excinfo.value.column == 3

    def test_malformed_hex(self):
        with pytest.raises(LexError, match="hexadecimal"):
            tokenize("0x")

    def test_digit_followed_by_letter(self):
        with pytest.raises(LexError):
            tokenize("123abc")
