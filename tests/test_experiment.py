"""Tests for the experiment runner: caching, derived results, and the
incremental input-set machinery.
"""

import numpy as np
import pytest

from repro.core.experiment import ExperimentRunner, SuiteConfig, default_cache_dir


class TestCaching:
    def test_trace_cached_in_memory(self, tiny_runner):
        first = tiny_runner.trace("mcfish", "train")
        second = tiny_runner.trace("mcfish", "train")
        assert first is second

    def test_trace_cached_on_disk(self, tiny_runner, tmp_path):
        trace = tiny_runner.trace("mcfish", "train")
        fresh = ExperimentRunner(
            SuiteConfig(scale=tiny_runner.config.scale, cache_dir=tiny_runner.config.cache_dir)
        )
        loaded = fresh.trace("mcfish", "train")
        assert np.array_equal(loaded.sites, trace.sites)

    def test_simulation_cached_roundtrip(self, tiny_runner):
        sim = tiny_runner.simulation("mcfish", "train", "bimodal")
        fresh = ExperimentRunner(
            SuiteConfig(scale=tiny_runner.config.scale, cache_dir=tiny_runner.config.cache_dir)
        )
        loaded = fresh.simulation("mcfish", "train", "bimodal")
        assert loaded.overall_accuracy == pytest.approx(sim.overall_accuracy)
        assert np.array_equal(loaded.correct, sim.correct)

    def test_scale_separates_cache_entries(self, tiny_runner):
        path_a = tiny_runner._trace_path("mcfish", "train")
        other = ExperimentRunner(SuiteConfig(scale=0.5, cache_dir=tiny_runner.config.cache_dir))
        path_b = other._trace_path("mcfish", "train")
        assert path_a != path_b

    def test_disk_cache_can_be_disabled(self, tmp_path):
        runner = ExperimentRunner(
            SuiteConfig(scale=0.02, cache_dir=tmp_path / "c", use_disk_cache=False)
        )
        runner.trace("mcfish", "train")
        assert not (tmp_path / "c").exists()

    def test_default_cache_dir_env_override(self, monkeypatch, tmp_path):
        monkeypatch.setenv("REPRO_2DPROF_CACHE", str(tmp_path / "envcache"))
        assert default_cache_dir() == tmp_path / "envcache"


class TestDerivedResults:
    def test_profile_2d_runs(self, tiny_runner):
        report = tiny_runner.profile_2d("vortexish")
        assert report.profiled_sites()
        assert 0.0 < report.overall_accuracy <= 1.0

    def test_ground_truth_default_is_ref(self, tiny_runner):
        truth = tiny_runner.ground_truth("vortexish")
        assert truth.universe

    def test_evaluate_produces_metrics(self, tiny_runner):
        metrics = tiny_runner.evaluate("vortexish")
        row = metrics.as_row()
        assert set(row) == {"COV-dep", "ACC-dep", "COV-indep", "ACC-indep"}

    def test_cross_predictor_evaluation(self, tiny_runner):
        metrics = tiny_runner.evaluate(
            "vortexish", profiler_predictor="bimodal", target_predictor="gshare"
        )
        assert metrics.true_dep + metrics.true_indep == len(
            tiny_runner.ground_truth("vortexish", "gshare").universe
        )

    def test_dependent_fractions_in_range(self, tiny_runner):
        dynamic, static = tiny_runner.dependent_fractions("vortexish")
        assert 0.0 <= dynamic <= 1.0
        assert 0.0 <= static <= 1.0


class TestIncrementalInputSets:
    def test_deep_workload_steps(self, tiny_runner):
        lists = tiny_runner.incremental_input_sets("gzipish")
        assert lists[0] == ["ref"]
        assert lists[1] == ["ref", "ext-1"]
        assert lists[-1] == ["ref"] + [f"ext-{i}" for i in range(1, 7)]

    def test_shallow_workload_single_step(self, tiny_runner):
        assert tiny_runner.incremental_input_sets("mcfish") == [["ref"]]

    def test_union_monotone_in_practice(self, tiny_runner):
        previous = -1
        for others in tiny_runner.incremental_input_sets("gapish")[:3]:
            truth = tiny_runner.ground_truth("gapish", "bimodal", others)
            assert len(truth.dependent) >= previous
            previous = len(truth.dependent)


class TestWarehouseIntegration:
    def test_warehouse_requires_configuration(self, tiny_runner):
        from repro.errors import ExperimentError

        with pytest.raises(ExperimentError, match="warehouse_dir"):
            tiny_runner.warehouse

    def test_profile_2d_auto_ingests(self, tiny_runner, tmp_path):
        from repro.store import ProfileWarehouse

        runner = ExperimentRunner(SuiteConfig(
            scale=tiny_runner.config.scale,
            cache_dir=tiny_runner.config.cache_dir,
            warehouse_dir=tmp_path / "wh",
        ))
        report = runner.profile_2d("mcfish", "bimodal")
        # keep_series is forced on so the matrix can be stored.
        assert report.series is not None

        warehouse = ProfileWarehouse(tmp_path / "wh", create=False)
        records = warehouse.runs("mcfish", "train", "bimodal")
        assert len(records) == 1
        assert records[0].source == "experiment" and records[0].has_counts

        # A repeat profile dedupes instead of appending.
        runner.profile_2d("mcfish", "bimodal")
        assert len(warehouse.runs()) == 1
