"""Unit tests for AST constant folding and bytecode jump threading."""


from repro.bytecode.opcodes import Opcode
from repro.lang import ast, compile_source
from repro.lang.lexer import tokenize
from repro.lang.parser import parse
from repro.lang.optimizer import fold_program, thread_jumps
from repro.vm import InputSet, Machine


def folded_main_body(source):
    tree = fold_program(parse(tokenize(source)))
    return tree.functions[0].body.body


def run_both(source, data=(), args=()):
    """Run with and without optimization; assert observable equivalence."""
    results = []
    for optimize in (False, True):
        program = compile_source(source, optimize=optimize)
        machine = Machine(program)
        result = machine.run(InputSet.make("t", data=data, args=args))
        results.append((result.return_value, tuple(result.output)))
    assert results[0] == results[1]
    return results[0]


class TestConstantFolding:
    def test_arithmetic_folds_to_literal(self):
        body = folded_main_body("func main() { return 2 + 3 * 4; }")
        assert isinstance(body[0].value, ast.IntLiteral)
        assert body[0].value.value == 14

    def test_unary_folds(self):
        body = folded_main_body("func main() { return -(2 + 3); }")
        assert body[0].value.value == -5

    def test_division_by_zero_not_folded(self):
        body = folded_main_body("func main() { return 1 / 0; }")
        assert isinstance(body[0].value, ast.Binary)

    def test_logical_and_false_left(self):
        body = folded_main_body("func main() { return 0 && input(0); }")
        assert isinstance(body[0].value, ast.IntLiteral) and body[0].value.value == 0

    def test_logical_or_true_left(self):
        body = folded_main_body("func main() { return 3 || input(0); }")
        assert body[0].value.value == 1

    def test_logical_not_folded_when_right_dynamic(self):
        body = folded_main_body("func main() { return 1 && input(0); }")
        assert isinstance(body[0].value, ast.Logical)

    def test_if_true_keeps_then(self):
        body = folded_main_body("func main() { if (1) { return 1; } else { return 2; } }")
        assert isinstance(body[0], ast.Block)
        assert isinstance(body[0].body[0], ast.Return)
        assert body[0].body[0].value.value == 1

    def test_if_false_keeps_else(self):
        body = folded_main_body("func main() { if (0) { return 1; } else { return 2; } }")
        assert body[0].body[0].value.value == 2

    def test_if_false_no_else_removed(self):
        body = folded_main_body("func main() { if (0) { return 1; } return 3; }")
        assert isinstance(body[0], ast.Block) and body[0].body == []

    def test_while_false_removed(self):
        body = folded_main_body("func main() { while (1 > 2) { return 9; } return 3; }")
        assert isinstance(body[0], ast.Block) and body[0].body == []

    def test_for_const_false_keeps_init(self):
        body = folded_main_body("func main() { var s = 0; for (s = 5; 0; ) { } return s; }")
        assert isinstance(body[1], ast.Assign)

    def test_folding_preserves_semantics(self):
        source = """
        func main() {
            var x = (3 * 4 + 1) << 2;
            if (2 > 1) { x += 100; }
            while (0) { x = 0; }
            return x;
        }
        """
        value, _ = run_both(source)
        assert value == (13 << 2) + 100


class TestFoldedBranchSites:
    def test_constant_branches_removed_from_site_table(self):
        source = "func main() { if (1 < 2) { return 1; } return 0; }"
        optimized = compile_source(source, optimize=True)
        unoptimized = compile_source(source, optimize=False)
        assert optimized.num_sites == 0
        assert unoptimized.num_sites == 1


class TestJumpThreading:
    def test_jump_chains_collapse(self):
        # if/else if/else chains produce JUMP-to-JUMP patterns.
        source = """
        func main() {
            var x = arg(0);
            var r = 0;
            if (x == 1) { r = 1; }
            else if (x == 2) { r = 2; }
            else { r = 3; }
            return r;
        }
        """
        program = compile_source(source, optimize=True)
        main = program.functions[program.main_index]
        for pc, op in enumerate(main.ops):
            if op == Opcode.JUMP:
                target = main.args[pc]
                assert main.ops[target] != Opcode.JUMP, "jump chain survived threading"

    def test_threading_preserves_semantics(self):
        source = """
        func main() {
            var total = 0;
            var i;
            for (i = 0; i < 20; i += 1) {
                if (i % 2 == 0) { total += 1; }
                else if (i % 3 == 0) { total += 10; }
                else { total += 100; }
            }
            return total;
        }
        """
        run_both(source)

    def test_thread_jumps_reports_changes(self):
        source = """
        func main() {
            var x = arg(0);
            if (x) { if (x > 1) { return 2; } return 1; }
            return 0;
        }
        """
        from repro.lang.codegen import generate_functions
        from repro.lang.semantics import check

        tree = parse(tokenize(source))
        info = check(tree)
        functions, _index, _meta = generate_functions(tree, info)
        changed = thread_jumps(functions)
        assert changed >= 0  # Idempotence check below matters more.
        assert thread_jumps(functions) == 0
