"""Unit tests for Minic semantic analysis."""

import pytest

from repro.errors import SemanticError
from repro.lang import ast
from repro.lang.lexer import tokenize
from repro.lang.parser import parse
from repro.lang.semantics import check, const_eval, fold_binary


def analyze(source):
    tree = parse(tokenize(source))
    return tree, check(tree)


class TestProgramStructure:
    def test_main_required(self):
        with pytest.raises(SemanticError, match="main"):
            analyze("func f() { }")

    def test_main_must_take_no_params(self):
        with pytest.raises(SemanticError, match="no parameters"):
            analyze("func main(x) { }")

    def test_duplicate_function(self):
        with pytest.raises(SemanticError, match="duplicate function"):
            analyze("func f() {} func f() {} func main() {}")

    def test_duplicate_global(self):
        with pytest.raises(SemanticError, match="duplicate global"):
            analyze("global g; global g; func main() {}")

    def test_duplicate_parameter(self):
        with pytest.raises(SemanticError, match="duplicate parameter"):
            analyze("func f(a, a) {} func main() {}")

    def test_function_shadowing_builtin_rejected(self):
        with pytest.raises(SemanticError, match="shadows a builtin"):
            analyze("func abs(x) { return x; } func main() {}")

    def test_global_shadowing_builtin_rejected(self):
        with pytest.raises(SemanticError, match="shadows a builtin"):
            analyze("global min; func main() {}")


class TestScoping:
    def test_undeclared_name(self):
        with pytest.raises(SemanticError, match="undeclared"):
            analyze("func main() { return x; }")

    def test_local_shadows_global(self):
        source = "global x = 1; func main() { var x = 2; return x; }"
        tree, _info = analyze(source)
        ret = tree.functions[0].body.body[1]
        assert ret.value.binding[0] == "local"

    def test_global_binding(self):
        tree, info = analyze("global g = 1; func main() { return g; }")
        ret = tree.functions[0].body.body[0]
        assert ret.value.binding == ("global", 0)

    def test_block_scope_expires(self):
        source = "func main() { if (1) { var y = 1; } return y; }"
        with pytest.raises(SemanticError, match="undeclared"):
            analyze(source)

    def test_duplicate_in_same_scope(self):
        with pytest.raises(SemanticError, match="duplicate declaration"):
            analyze("func main() { var x = 1; var x = 2; }")

    def test_shadowing_in_nested_scope_allowed(self):
        source = "func main() { var x = 1; { var x = 2; } return x; }"
        analyze(source)

    def test_for_init_scoped_to_loop(self):
        source = "func main() { for (var i = 0; i < 3; i += 1) { } return i; }"
        with pytest.raises(SemanticError, match="undeclared"):
            analyze(source)

    def test_param_slots_come_first(self):
        _tree, info = analyze("func f(a, b) { var c = 0; return c; } func main() {}")
        assert info.functions["f"].local_count == 3

    def test_each_decl_gets_fresh_slot(self):
        source = "func main() { { var a = 1; } { var b = 2; } }"
        _tree, info = analyze(source)
        assert info.functions["main"].local_count == 2


class TestCalls:
    def test_arity_mismatch(self):
        with pytest.raises(SemanticError, match="expects 2"):
            analyze("func f(a, b) {} func main() { f(1); }")

    def test_builtin_arity_mismatch(self):
        with pytest.raises(SemanticError, match="expects 2"):
            analyze("func main() { min(1); }")

    def test_undefined_function(self):
        with pytest.raises(SemanticError, match="undefined function"):
            analyze("func main() { nope(); }")

    def test_builtin_resolution(self):
        tree, _info = analyze("func main() { output(1); }")
        call = tree.functions[0].body.body[0].expr
        assert call.target == ("builtin", "output")

    def test_forward_reference_allowed(self):
        analyze("func main() { helper(); } func helper() { }")

    def test_recursion_allowed(self):
        analyze("func main() { main(); }")


class TestLoopsAndJumps:
    def test_break_outside_loop(self):
        with pytest.raises(SemanticError, match="break"):
            analyze("func main() { break; }")

    def test_continue_outside_loop(self):
        with pytest.raises(SemanticError, match="continue"):
            analyze("func main() { if (1) { continue; } }")

    def test_break_inside_while(self):
        analyze("func main() { while (1) { break; } }")

    def test_continue_inside_do_while(self):
        analyze("func main() { do { continue; } while (0); }")

    def test_break_inside_for(self):
        analyze("func main() { for (;;) { break; } }")


class TestConstants:
    def test_global_init_must_be_const(self):
        with pytest.raises(SemanticError, match="constant"):
            analyze("global g = input(0); func main() {}")

    def test_global_const_expression(self):
        analyze("global g = 4 * 16 - 1; func main() {}")

    def test_global_array_size_const(self):
        analyze("global a[1 << 4]; func main() {}")

    def test_global_array_size_positive(self):
        with pytest.raises(SemanticError, match="positive"):
            analyze("global a[0]; func main() {}")

    def test_global_init_division_by_zero(self):
        with pytest.raises(SemanticError, match="zero"):
            analyze("global g = 1 / 0; func main() {}")

    def test_const_eval_unary(self):
        expr = ast.Unary(line=1, op="-", operand=ast.IntLiteral(line=1, value=7))
        assert const_eval(expr) == -7


class TestFoldBinary:
    """fold_binary implements C semantics (truncation toward zero)."""

    @pytest.mark.parametrize("op,a,b,expected", [
        ("+", 2, 3, 5), ("-", 2, 5, -3), ("*", -4, 3, -12),
        ("/", 7, 2, 3), ("/", -7, 2, -3), ("/", 7, -2, -3), ("/", -7, -2, 3),
        ("%", 7, 3, 1), ("%", -7, 3, -1), ("%", 7, -3, 1),
        ("&", 12, 10, 8), ("|", 12, 10, 14), ("^", 12, 10, 6),
        ("<<", 1, 4, 16), (">>", 16, 2, 4),
        ("==", 3, 3, 1), ("!=", 3, 3, 0),
        ("<", 2, 3, 1), ("<=", 3, 3, 1), (">", 2, 3, 0), (">=", 3, 3, 1),
    ])
    def test_operator(self, op, a, b, expected):
        assert fold_binary(op, a, b) == expected

    def test_division_truncation_identity(self):
        # C guarantees (a/b)*b + a%b == a.
        for a in (-7, -1, 0, 1, 7, 13):
            for b in (-3, -1, 1, 3, 5):
                assert fold_binary(op="/", left=a, right=b) * b + fold_binary("%", a, b) == a
