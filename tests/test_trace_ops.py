"""Tests for trace manipulation utilities."""

import numpy as np
import pytest

from repro.errors import TraceError
from repro.trace.ops import (
    bias_divergence,
    concat,
    filter_sites,
    site_stream,
    subsample,
    summarize,
    traces_equal,
)
from repro.trace.trace import BranchTrace


def trace_of(sites, outcomes, num_sites=4, name="i"):
    return BranchTrace(
        program="p", input_name=name, num_sites=num_sites,
        sites=np.array(sites, dtype=np.int32),
        outcomes=np.array(outcomes, dtype=np.uint8),
        instructions=10 * len(sites),
    )


BASE = trace_of([0, 1, 0, 2, 1, 0], [1, 0, 1, 1, 0, 0])


class TestFilterSites:
    def test_keeps_only_selected(self):
        filtered = filter_sites(BASE, {0})
        assert filtered.sites.tolist() == [0, 0, 0]
        assert filtered.outcomes.tolist() == [1, 1, 0]

    def test_multiple_sites_preserve_order(self):
        filtered = filter_sites(BASE, {0, 2})
        assert filtered.sites.tolist() == [0, 0, 2, 0]

    def test_out_of_range_rejected(self):
        with pytest.raises(TraceError):
            filter_sites(BASE, {9})


class TestSiteStream:
    def test_stream(self):
        assert site_stream(BASE, 1).tolist() == [0, 0]

    def test_empty_stream(self):
        assert site_stream(BASE, 3).tolist() == []

    def test_out_of_range(self):
        with pytest.raises(TraceError):
            site_stream(BASE, -1)


class TestConcat:
    def test_concatenation(self):
        other = trace_of([3, 3], [1, 1], name="j")
        joined = concat([BASE, other])
        assert len(joined) == 8
        assert joined.input_name == "i+j"
        assert joined.instructions == BASE.instructions + other.instructions

    def test_mismatched_programs_rejected(self):
        other = trace_of([0], [1], num_sites=7)
        with pytest.raises(TraceError, match="num_sites"):
            concat([BASE, other])

    def test_empty_list_rejected(self):
        with pytest.raises(TraceError):
            concat([])


class TestSubsample:
    def test_every_second(self):
        sampled = subsample(BASE, 2)
        assert sampled.sites.tolist() == [0, 0, 1]

    def test_step_one_identity(self):
        assert traces_equal(subsample(BASE, 1), BASE)

    def test_invalid_step(self):
        with pytest.raises(TraceError):
            subsample(BASE, 0)


class TestSummarize:
    def test_summary_fields(self):
        summary = summarize(BASE)
        assert summary.dynamic_branches == 6
        assert summary.static_branches_executed == 3
        assert summary.taken_rate == pytest.approx(0.5)
        assert summary.hottest_site == 0
        assert summary.hottest_count == 3

    def test_empty_trace(self):
        empty = trace_of([], [])
        summary = summarize(empty)
        assert summary.dynamic_branches == 0
        assert summary.taken_rate == 0.0


class TestEqualityAndDivergence:
    def test_traces_equal_reflexive(self):
        assert traces_equal(BASE, BASE)

    def test_traces_differ_on_outcomes(self):
        other = trace_of([0, 1, 0, 2, 1, 0], [1, 0, 1, 1, 0, 1])
        assert not traces_equal(BASE, other)

    def test_bias_divergence(self):
        a = trace_of([0] * 100, [1] * 90 + [0] * 10)
        b = trace_of([0] * 100, [1] * 50 + [0] * 50)
        divergence = bias_divergence(a, b, min_executions=50)
        assert divergence[0] == pytest.approx(0.4)

    def test_bias_divergence_min_executions(self):
        a = trace_of([0] * 10, [1] * 10)
        b = trace_of([0] * 10, [0] * 10)
        assert bias_divergence(a, b, min_executions=50) == {}

    def test_bias_divergence_program_mismatch(self):
        other = trace_of([0], [1], num_sites=9)
        with pytest.raises(TraceError):
            bias_divergence(BASE, other)
