"""Tests for the COV/ACC metrics (paper Table 3)."""

import math

import pytest

from repro.core.groundtruth import GroundTruth
from repro.core.metrics import average_metrics, evaluate_detection


def truth(dep, indep):
    return GroundTruth(dependent=set(dep), independent=set(indep),
                       universe=set(dep) | set(indep))


class TestEvaluateDetection:
    def test_perfect_detection(self):
        metrics = evaluate_detection({0, 1}, truth({0, 1}, {2, 3}))
        assert metrics.cov_dep == 1.0
        assert metrics.acc_dep == 1.0
        assert metrics.cov_indep == 1.0
        assert metrics.acc_indep == 1.0

    def test_paper_footnote6_example(self):
        # One true dependent branch; detector flags 4 including it:
        # ACC-dep = 25%, COV-dep = 100%.
        metrics = evaluate_detection({0, 1, 2, 3}, truth({0}, {1, 2, 3, 4, 5}))
        assert metrics.acc_dep == pytest.approx(0.25)
        assert metrics.cov_dep == pytest.approx(1.0)

    def test_miss_everything(self):
        metrics = evaluate_detection(set(), truth({0, 1}, {2}))
        assert metrics.cov_dep == 0.0
        assert math.isnan(metrics.acc_dep)  # 0/0: flagged nothing
        assert metrics.cov_indep == 1.0

    def test_flag_everything(self):
        metrics = evaluate_detection({0, 1, 2}, truth({0}, {1, 2}))
        assert metrics.cov_dep == 1.0
        assert metrics.acc_dep == pytest.approx(1 / 3)
        assert metrics.cov_indep == 0.0
        assert math.isnan(metrics.acc_indep)

    def test_predictions_outside_universe_ignored(self):
        metrics = evaluate_detection({0, 99}, truth({0}, {1}))
        assert metrics.identified_dep == 1
        assert metrics.acc_dep == 1.0

    def test_counts_exposed(self):
        metrics = evaluate_detection({0, 2}, truth({0, 1}, {2, 3}))
        assert metrics.true_dep == 2
        assert metrics.identified_dep == 2
        assert metrics.correct_dep == 1
        assert metrics.true_indep == 2
        assert metrics.identified_indep == 2
        assert metrics.correct_indep == 1

    def test_as_row_keys(self):
        metrics = evaluate_detection(set(), truth({0}, {1}))
        assert set(metrics.as_row()) == {"COV-dep", "ACC-dep", "COV-indep", "ACC-indep"}


class TestAverageMetrics:
    def test_simple_average(self):
        a = evaluate_detection({0}, truth({0}, {1}))
        b = evaluate_detection(set(), truth({0}, {1}))
        avg = average_metrics([a, b])
        assert avg["COV-dep"] == pytest.approx(0.5)

    def test_nan_skipped(self):
        a = evaluate_detection({0}, truth({0}, {1}))   # acc_dep = 1.0
        b = evaluate_detection(set(), truth({0}, {1}))  # acc_dep = nan
        avg = average_metrics([a, b])
        assert avg["ACC-dep"] == pytest.approx(1.0)

    def test_all_nan_stays_nan(self):
        b = evaluate_detection(set(), truth({0}, {1}))
        assert math.isnan(average_metrics([b])["ACC-dep"])
