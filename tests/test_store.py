"""Tests for the profile warehouse (ingest, queries, maintenance).

The acceptance bar for the query engine is *bit-identity* with the live
pipeline: ``diff_runs`` must reproduce :func:`repro.core.groundtruth.ground_truth`
labels exactly (no trace replay), and ``reclassify`` must match a fresh
:func:`repro.core.profiler2d.profile_trace` classification under the same
thresholds — pinned here with a Hypothesis property over the threshold
space.  The zero-copy contract (queries read memmap views, never whole
segment files) is asserted directly on the returned arrays.
"""

from __future__ import annotations

import os
from pathlib import Path

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core.experiment import ExperimentRunner, SuiteConfig
from repro.core.profiler2d import ProfilerConfig, profile_trace
from repro.core.stats import TestThresholds
from repro.errors import StoreError
from repro.store import ProfileWarehouse, diff_runs, join_runs, reclassify

SCALE = 0.05
WORKLOAD = "gzipish"
KEEP = ProfilerConfig(keep_series=True)


@pytest.fixture(scope="module")
def runner(tmp_path_factory):
    cache = tmp_path_factory.mktemp("cache")
    return ExperimentRunner(SuiteConfig(scale=SCALE, cache_dir=cache))


@pytest.fixture(scope="module")
def artifacts(runner):
    """(report, sim) per input, profiled with the raw series retained."""
    out = {}
    for input_name in ("train", "ref"):
        report = runner.profile_2d(WORKLOAD, "gshare", input_name=input_name,
                                   config=KEEP)
        sim = runner.simulation(WORKLOAD, input_name, "gshare")
        out[input_name] = (report, sim)
    return out


@pytest.fixture()
def warehouse(tmp_path):
    return ProfileWarehouse(tmp_path / "wh")


def _ingest(warehouse, artifacts, input_name, **kwargs):
    report, sim = artifacts[input_name]
    kwargs.setdefault("sim", sim)
    return warehouse.ingest(report, workload=WORKLOAD, input_name=input_name,
                            predictor="gshare", scale=SCALE, **kwargs)


@pytest.fixture()
def stocked(warehouse, artifacts):
    """A warehouse holding the train and ref runs; returns (wh, ids)."""
    ids = {name: _ingest(warehouse, artifacts, name) for name in ("train", "ref")}
    return warehouse, ids


# ----------------------------------------------------------------------
# Ingest and catalog
# ----------------------------------------------------------------------


class TestIngest:
    def test_catalog_lists_committed_runs(self, stocked):
        warehouse, ids = stocked
        records = warehouse.runs()
        assert [rec.run_id for rec in records] == sorted(ids.values())
        by_input = {rec.input: rec for rec in records}
        assert set(by_input) == {"train", "ref"}
        assert all(rec.workload == WORKLOAD for rec in records)
        assert all(rec.has_counts for rec in records)

    def test_stats_counts_everything(self, stocked):
        warehouse, _ids = stocked
        stats = warehouse.stats()
        assert stats["runs"] == 2
        assert stats["segments"] == 2
        assert stats["entries"] > 0
        assert stats["bytes"] > 0
        assert stats["corrupt_runs"] == 0

    def test_dedupe_returns_existing_run(self, stocked, artifacts):
        warehouse, ids = stocked
        again = _ingest(warehouse, artifacts, "train")
        assert again == ids["train"]
        assert len(warehouse.runs()) == 2

    def test_dedupe_off_appends(self, stocked, artifacts):
        warehouse, ids = stocked
        fresh = _ingest(warehouse, artifacts, "train", dedupe=False)
        assert fresh != ids["train"]
        assert len(warehouse.runs()) == 3

    def test_ingest_requires_series(self, warehouse, runner):
        report = runner.profile_2d(WORKLOAD, "gshare")  # keep_series off
        with pytest.raises(StoreError, match="keep_series"):
            warehouse.ingest(report, workload=WORKLOAD, input_name="train",
                             predictor="gshare")

    def test_find_honors_key_and_scale(self, stocked):
        warehouse, ids = stocked
        hit = warehouse.find(WORKLOAD, "train", "gshare", scale=SCALE)
        assert hit is not None and hit.run_id == ids["train"]
        assert warehouse.find(WORKLOAD, "train", "gshare", scale=0.9) is None
        assert warehouse.find(WORKLOAD, "train", "perceptron") is None

    def test_open_unknown_run(self, warehouse):
        with pytest.raises(StoreError, match="unknown run"):
            warehouse.open_run("r999999")


# ----------------------------------------------------------------------
# Columnar reads
# ----------------------------------------------------------------------


class TestReads:
    def test_site_series_matches_report(self, stocked, artifacts):
        warehouse, ids = stocked
        report, _sim = artifacts["train"]
        run = warehouse.open_run(ids["train"])
        for site in sorted(run.profiled_sites()):
            column = report.series[:, site]
            mask = ~np.isnan(column)
            slices, acc = run.site_series(site)
            np.testing.assert_array_equal(np.asarray(slices), np.nonzero(mask)[0])
            np.testing.assert_array_equal(np.asarray(acc), column[mask])

    def test_site_series_is_memmap_view(self, stocked):
        """The zero-copy guarantee: queries return views into the mapped
        segment file, not materialized copies of it."""
        warehouse, ids = stocked
        run = warehouse.open_run(ids["train"])
        site = min(run.profiled_sites())
        slices, acc = run.site_series(site)
        for view in (slices, acc):
            assert isinstance(view, np.memmap) or isinstance(view.base, np.memmap)

    def test_site_series_out_of_range(self, stocked):
        warehouse, ids = stocked
        run = warehouse.open_run(ids["train"])
        with pytest.raises(StoreError, match="out of range"):
            run.site_series(run.num_sites)

    def test_slice_overall_roundtrip(self, stocked, artifacts):
        warehouse, ids = stocked
        report, _sim = artifacts["train"]
        run = warehouse.open_run(ids["train"])
        np.testing.assert_array_equal(np.asarray(run.slice_overall()),
                                      report.slice_overall)

    def test_counts_roundtrip(self, stocked, artifacts):
        warehouse, ids = stocked
        _report, sim = artifacts["train"]
        run = warehouse.open_run(ids["train"])
        exec_counts, correct_counts = run.counts()
        np.testing.assert_array_equal(np.asarray(exec_counts), sim.exec_counts)
        np.testing.assert_array_equal(np.asarray(correct_counts), sim.correct_counts)
        assert run.as_simulation().site_accuracies() == sim.site_accuracies()

    def test_run_without_counts(self, warehouse, artifacts):
        run_id = _ingest(warehouse, artifacts, "train", sim=None)
        run = warehouse.open_run(run_id)
        assert not run.record.has_counts
        with pytest.raises(StoreError, match="without per-site counts"):
            run.counts()
        # Time-series and reclassification still work without counts.
        assert run.profiled_sites()
        assert reclassify(run)["profiled"]

    def test_overall_accuracy_bit_exact(self, stocked, artifacts):
        warehouse, ids = stocked
        report, _sim = artifacts["train"]
        assert warehouse.open_run(ids["train"]).overall_accuracy == report.overall_accuracy


# ----------------------------------------------------------------------
# Query engine vs. the live pipeline (bit-identity)
# ----------------------------------------------------------------------


class TestQueries:
    def test_reclassify_defaults_match_original_run(self, stocked, artifacts):
        warehouse, ids = stocked
        report, _sim = artifacts["train"]
        result = reclassify(warehouse.open_run(ids["train"]))
        assert result["input_dependent"] == sorted(report.input_dependent_sites())
        assert result["profiled"] == sorted(report.profiled_sites())

    def test_diff_matches_ground_truth_bit_identically(self, stocked, runner):
        """The acceptance criterion: ``db diff`` labels == the live
        pipeline's ground truth, with zero trace replay."""
        warehouse, ids = stocked
        truth = diff_runs(warehouse.open_run(ids["train"]),
                          [warehouse.open_run(ids["ref"])])
        live = runner.ground_truth(WORKLOAD, "gshare")
        assert truth.dependent == live.dependent
        assert truth.independent == live.independent
        assert truth.universe == live.universe
        assert truth.dependent_fraction == live.dependent_fraction

    def test_diff_threshold_passthrough(self, stocked):
        warehouse, ids = stocked
        train = warehouse.open_run(ids["train"])
        ref = warehouse.open_run(ids["ref"])
        loose = diff_runs(train, [ref], threshold=0.0)
        strict = diff_runs(train, [ref], threshold=0.5)
        assert strict.dependent <= loose.dependent
        assert strict.universe == loose.universe

    def test_diff_requires_other_runs(self, stocked):
        warehouse, ids = stocked
        with pytest.raises(StoreError, match="at least one"):
            diff_runs(warehouse.open_run(ids["train"]), [])

    def test_join_is_symmetric_on_agreement(self, stocked):
        warehouse, ids = stocked
        a = warehouse.open_run(ids["train"])
        b = warehouse.open_run(ids["ref"])
        rows = join_runs(a, b)
        assert rows, "train and ref share profiled branches"
        sites = [row["site"] for row in rows]
        assert sites == sorted(sites)
        flipped = {row["site"]: row for row in join_runs(b, a)}
        for row in rows:
            assert flipped[row["site"]]["agree"] == row["agree"]


class TestWindowCounts:
    def test_full_window_covers_every_observation(self, stocked):
        warehouse, ids = stocked
        run = warehouse.open_run(ids["train"])
        counts = run.window_counts()
        assert int(counts.total.sum()) == run.record.entry_count
        assert counts.line == run.record.overall_accuracy
        for site in sorted(run.profiled_sites())[:25]:
            slices, _acc = run.site_series(site)
            assert counts.total[site] == len(slices)

    def test_low_is_bounded_and_line_sensitive(self, stocked):
        warehouse, ids = stocked
        run = warehouse.open_run(ids["train"])
        counts = run.window_counts()
        assert np.all(counts.low <= counts.total)
        floor = run.window_counts(low_line=0.0)
        assert int(floor.low.sum()) == 0
        ceiling = run.window_counts(low_line=2.0)
        assert np.array_equal(ceiling.low, ceiling.total)

    def test_windows_partition_additively(self, stocked):
        warehouse, ids = stocked
        run = warehouse.open_run(ids["train"])
        mid = run.record.n_slices // 2
        whole = run.window_counts()
        first = run.window_counts(0, mid)
        second = run.window_counts(mid, run.record.n_slices)
        assert np.array_equal(first.total + second.total, whole.total)
        assert np.array_equal(first.low + second.low, whole.low)
        assert (first.lo_slice, first.hi_slice) == (0, mid)


@pytest.fixture(scope="module")
def module_store(tmp_path_factory, artifacts):
    """A module-lifetime store for the Hypothesis property (one ingest)."""
    warehouse = ProfileWarehouse(tmp_path_factory.mktemp("wh-prop"))
    report, sim = artifacts["train"]
    run_id = warehouse.ingest(report, workload=WORKLOAD, input_name="train",
                              predictor="gshare", scale=SCALE, sim=sim)
    return warehouse, run_id


class TestReclassifyProperty:
    @settings(max_examples=25, deadline=None,
              suppress_health_check=[HealthCheck.function_scoped_fixture])
    @given(std_th=st.floats(0.0, 0.2, allow_nan=False),
           pam_th=st.floats(0.0, 1.0, allow_nan=False))
    def test_reclassify_bit_identical_to_fresh_profile(
            self, runner, module_store, std_th, pam_th):
        """For any (std_th, pam_th), reclassifying the stored matrix gives
        exactly the classification of a fresh ``profile_trace`` run."""
        warehouse, run_id = module_store
        stored = reclassify(warehouse.open_run(run_id),
                            std_th=std_th, pam_th=pam_th)
        config = ProfilerConfig(
            thresholds=TestThresholds(std_th=std_th, pam_th=pam_th))
        fresh = profile_trace(
            runner.trace(WORKLOAD, "train"),
            simulation=runner.simulation(WORKLOAD, "train", "gshare"),
            config=config,
        )
        assert stored["input_dependent"] == sorted(fresh.input_dependent_sites())
        assert stored["profiled"] == sorted(fresh.profiled_sites())


# ----------------------------------------------------------------------
# Maintenance: compaction and gc
# ----------------------------------------------------------------------


class TestMaintenance:
    def test_compact_preserves_every_query(self, stocked, runner):
        warehouse, ids = stocked
        before = reclassify(warehouse.open_run(ids["train"]))
        truth_before = diff_runs(warehouse.open_run(ids["train"]),
                                 [warehouse.open_run(ids["ref"])])

        stats = warehouse.compact()
        assert stats.runs_rewritten == 2
        assert stats.segments_after == 1
        assert warehouse.stats()["segments"] == 1
        assert warehouse.check() == []

        after = reclassify(warehouse.open_run(ids["train"]))
        truth_after = diff_runs(warehouse.open_run(ids["train"]),
                                [warehouse.open_run(ids["ref"])])
        assert after["input_dependent"] == before["input_dependent"]
        assert truth_after.dependent == truth_before.dependent
        # Superseded segment directories are gone (compact or gc removes them).
        warehouse.gc()
        dirs = [p for p in warehouse.segments_root.iterdir() if p.is_dir()]
        assert len(dirs) == 1

    def test_compact_empty_store(self, warehouse):
        stats = warehouse.compact()
        assert stats.runs_rewritten == 0

    def test_gc_sweeps_garbage_only(self, stocked):
        warehouse, ids = stocked
        orphan = warehouse.segments_root / "seg-dead"
        orphan.mkdir()
        (orphan / "acc.npy").write_bytes(b"partial")
        litter = warehouse.segments_root / ("x.npy.123" + ".tmp")
        litter.write_bytes(b"partial")

        stats = warehouse.gc()
        assert stats.segments_removed == 1
        assert stats.tmp_files_removed == 1
        assert not orphan.exists() and not litter.exists()
        # Committed data untouched.
        assert len(warehouse.runs()) == 2
        assert warehouse.open_run(ids["train"]).profiled_sites()

    def test_gc_purge_corrupt_drops_damaged_runs(self, stocked):
        warehouse, ids = stocked
        record = warehouse.manifest().runs[ids["ref"]]
        acc = warehouse.segments_root / record.segment / "acc.npy"
        acc.write_bytes(acc.read_bytes()[:16])
        assert warehouse.check() == [ids["ref"]]

        stats = warehouse.gc(purge_corrupt=True)
        assert stats.runs_purged == 1
        assert stats.segments_removed == 1
        assert [rec.run_id for rec in warehouse.runs()] == [ids["train"]]
        assert warehouse.check() == []

    def test_gc_dry_run_reports_without_touching_anything(self, stocked):
        """--dry-run counts what a sweep would do; disk stays untouched."""
        warehouse, ids = stocked
        orphan = warehouse.segments_root / "seg-dead"
        orphan.mkdir()
        (orphan / "acc.npy").write_bytes(b"partial")
        litter = warehouse.segments_root / ("x.npy.123" + ".tmp")
        litter.write_bytes(b"partial")
        record = warehouse.manifest().runs[ids["ref"]]
        acc = warehouse.segments_root / record.segment / "acc.npy"
        acc.write_bytes(acc.read_bytes()[:16])

        manifest_path = warehouse.manifest_path
        before = manifest_path.read_bytes()
        stats = warehouse.gc(purge_corrupt=True, dry_run=True)

        # orphan dir + the would-be-purged run's segment; one tmp file.
        assert stats.segments_removed == 2
        assert stats.tmp_files_removed == 1
        assert stats.runs_purged == 1
        assert manifest_path.read_bytes() == before, (
            "dry run must leave the manifest byte-identical")
        assert orphan.exists() and litter.exists()
        assert set(warehouse.manifest().runs) == set(ids.values())

        # The real sweep afterwards does exactly what the dry run promised.
        real = warehouse.gc(purge_corrupt=True)
        assert (real.segments_removed, real.tmp_files_removed,
                real.runs_purged) == (2, 1, 1)


# ----------------------------------------------------------------------
# Golden-fixture regression guard
# ----------------------------------------------------------------------

GOLDEN_DIR = Path(__file__).parent / "golden"


def _run_db_cli(capsys, store, *argv) -> str:
    from repro.cli import main

    assert main(["db", *argv, "--store", str(store)]) == 0
    return capsys.readouterr().out


def _check_golden(name: str, actual: str) -> None:
    path = GOLDEN_DIR / name
    if os.environ.get("REPRO_UPDATE_GOLDEN"):
        GOLDEN_DIR.mkdir(exist_ok=True)
        path.write_text(actual)
        pytest.skip(f"regenerated {path}")
    assert path.exists(), f"missing fixture {path}; run with REPRO_UPDATE_GOLDEN=1"
    assert actual == path.read_text(), (
        f"{name} drifted; if the change is intentional, regenerate with "
        "REPRO_UPDATE_GOLDEN=1 and review the diff"
    )


class TestGoldenGuard:
    """``db reclassify``/``db diff`` output is pinned byte for byte.

    The pinned numbers were produced by the pre-vectorization pipeline,
    so any replay or profiler fast path that shifts a classification —
    even by one site — fails here.  The same reclassify result must also
    match a *fresh* ``profile_trace`` of the trace, closing the loop
    between the warehouse's stored matrices and the live pipeline.
    """

    def test_db_reclassify_matches_golden_and_fresh_profile(
            self, stocked, artifacts, runner, capsys):
        warehouse, ids = stocked
        assert ids["train"] == "r000001", "golden fixture assumes ingest order"

        out = _run_db_cli(capsys, warehouse.root, "reclassify", ids["train"],
                          "--std-th", "0.08")
        _check_golden("warehouse_reclassify_gzipish.txt", out)

        report, _sim = artifacts["train"]
        fresh = profile_trace(
            runner.trace(WORKLOAD, "train"),
            simulation=runner.simulation(WORKLOAD, "train", "gshare"),
            config=ProfilerConfig(thresholds=TestThresholds(std_th=0.08)),
        )
        result = reclassify(warehouse.open_run(ids["train"]), std_th=0.08)
        assert result["input_dependent"] == sorted(fresh.input_dependent_sites())
        assert result["profiled"] == sorted(fresh.profiled_sites())
        # And with the run's own thresholds, the stored matrix reproduces
        # the live report's verdicts.
        default = reclassify(warehouse.open_run(ids["train"]))
        assert default["input_dependent"] == sorted(report.input_dependent_sites())

    def test_db_diff_matches_golden(self, stocked, capsys):
        warehouse, ids = stocked
        out = _run_db_cli(capsys, warehouse.root, "diff",
                          ids["train"], ids["ref"])
        _check_golden("warehouse_diff_gzipish.txt", out)

    def test_db_diff_matches_golden_vortexish(self, stocked, runner, capsys):
        warehouse, _ids = stocked
        ids = {}
        for input_name in ("train", "ref"):
            report = runner.profile_2d("vortexish", "gshare",
                                       input_name=input_name, config=KEEP)
            sim = runner.simulation("vortexish", input_name, "gshare")
            ids[input_name] = warehouse.ingest(
                report, workload="vortexish", input_name=input_name,
                predictor="gshare", scale=SCALE, sim=sim)
        assert ids["train"] == "r000003", "golden fixture assumes ingest order"
        out = _run_db_cli(capsys, warehouse.root, "diff",
                          ids["train"], ids["ref"])
        _check_golden("warehouse_diff_vortexish.txt", out)
