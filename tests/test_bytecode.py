"""Unit tests for the bytecode containers, builder, and disassembler."""

import pytest

from repro.errors import CodegenError
from repro.bytecode.builder import FunctionBuilder
from repro.bytecode.opcodes import BUILTIN_IDS, Opcode
from repro.bytecode.program import disassemble
from repro.lang import compile_source


class TestBuilder:
    def test_emit_returns_pc(self):
        builder = FunctionBuilder("f", num_params=0)
        assert builder.emit(Opcode.CONST, 1) == 0
        assert builder.emit(Opcode.POP) == 1

    def test_label_resolution(self):
        builder = FunctionBuilder("f", num_params=0)
        label = builder.new_label()
        builder.emit_jump(label)
        builder.emit(Opcode.CONST, 0)
        builder.place(label)
        builder.emit(Opcode.RET)
        func = builder.finish(num_locals=0)
        assert func.args[0] == 2

    def test_branch_placeholder_site(self):
        builder = FunctionBuilder("f", num_params=0)
        label = builder.new_label()
        builder.emit(Opcode.CONST, 1)
        builder.emit_branch(Opcode.BR_FALSE, label, kind="if", line=3)
        builder.place(label)
        builder.emit(Opcode.CONST, 0)
        builder.emit(Opcode.RET)
        func = builder.finish(num_locals=0)
        target, site = func.args[1]
        assert target == 2 and site is None
        assert builder.branches[0].kind == "if"
        assert builder.branches[0].line == 3

    def test_undefined_label_raises(self):
        builder = FunctionBuilder("f", num_params=0)
        builder.emit_jump(builder.new_label())
        with pytest.raises(CodegenError, match="undefined label"):
            builder.finish(num_locals=0)

    def test_double_placement_raises(self):
        builder = FunctionBuilder("f", num_params=0)
        label = builder.new_label()
        builder.place(label)
        with pytest.raises(CodegenError, match="placed twice"):
            builder.place(label)

    def test_non_branch_opcode_rejected(self):
        builder = FunctionBuilder("f", num_params=0)
        with pytest.raises(CodegenError, match="non-branch"):
            builder.emit_branch(Opcode.JUMP, builder.new_label(), kind="if")


class TestSiteTable:
    SOURCE = """
    func helper(x) {
        if (x > 0) { return 1; }
        return 0;
    }
    func main() {
        var i;
        for (i = 0; i < 3 && helper(i); i += 1) { }
        return i;
    }
    """

    def test_sites_numbered_densely(self):
        program = compile_source(self.SOURCE)
        ids = [site.site_id for site in program.sites]
        assert ids == list(range(len(ids)))

    def test_sites_match_branch_instructions(self):
        program = compile_source(self.SOURCE)
        found = []
        for func in program.functions:
            for pc, op in enumerate(func.ops):
                if op in (Opcode.BR_FALSE, Opcode.BR_TRUE):
                    target, site_id = func.args[pc]
                    found.append((func.name, pc, site_id))
        table = [(s.function, s.pc, s.site_id) for s in program.sites]
        assert found == table

    def test_site_kinds(self):
        program = compile_source(self.SOURCE)
        kinds = {site.kind for site in program.sites}
        assert "if" in kinds and "loop" in kinds

    def test_site_by_label_roundtrip(self):
        program = compile_source(self.SOURCE)
        site = program.sites[0]
        assert program.site_by_label(site.label()) is site

    def test_site_by_label_missing(self):
        program = compile_source(self.SOURCE)
        with pytest.raises(KeyError):
            program.site_by_label("nope+0@L0")

    def test_sites_in_function(self):
        program = compile_source(self.SOURCE)
        helper_sites = program.sites_in_function("helper")
        assert helper_sites and all(s.function == "helper" for s in helper_sites)

    def test_branch_args_carry_site_ids(self):
        program = compile_source(self.SOURCE)
        for func in program.functions:
            for pc, op in enumerate(func.ops):
                if op in (Opcode.BR_FALSE, Opcode.BR_TRUE):
                    _target, site_id = func.args[pc]
                    assert isinstance(site_id, int)


class TestDisassembler:
    def test_contains_function_header(self):
        program = compile_source("func main() { return 1 + 2; }")
        text = disassemble(program)
        assert "func main" in text

    def test_single_function_filter(self):
        program = compile_source("func f() { } func main() { }")
        text = disassemble(program, function="f")
        assert "func f" in text and "func main" not in text

    def test_shows_branch_targets_and_sites(self):
        program = compile_source("func main() { if (arg(0)) { return 1; } return 0; }")
        text = disassemble(program)
        assert "BR_FALSE" in text and "site 0" in text

    def test_builtin_names_rendered(self):
        program = compile_source("func main() { output(1); return 0; }")
        text = disassemble(program)
        assert "output" in text

    def test_builtin_ids_are_dense_and_stable(self):
        ids = sorted(BUILTIN_IDS.values())
        assert ids == list(range(len(ids)))
