"""Shared fixtures for the test suite.

Tests run at tiny scale with disk caching pointed at a per-session tmp
directory, so they are hermetic and reasonably fast while still executing
the full pipeline (compile -> run -> trace -> simulate -> profile).
"""

from __future__ import annotations

import pytest

from repro.core.experiment import ExperimentRunner, SuiteConfig
from repro.lang import compile_source
from repro.vm import InputSet, Machine


@pytest.fixture(scope="session")
def tiny_runner(tmp_path_factory) -> ExperimentRunner:
    """An ExperimentRunner at very small scale with a temp cache.

    Session-scoped: many tests share the cached tiny traces.
    """
    cache = tmp_path_factory.mktemp("repro-cache")
    return ExperimentRunner(SuiteConfig(scale=0.05, cache_dir=cache))


COUNTER_SOURCE = """
global total = 0;

func add(a, b) {
    return a + b;
}

func main() {
    var i;
    for (i = 0; i < arg(0); i += 1) {
        if (i % 3 == 0) {
            total = add(total, i);
        } else {
            total -= 1;
        }
    }
    output(total);
    return total;
}
"""


@pytest.fixture(scope="session")
def counter_program():
    """A small program with an if branch and a loop branch."""
    return compile_source(COUNTER_SOURCE, name="counter")


@pytest.fixture()
def counter_machine(counter_program):
    return Machine(counter_program)


def run_main(source: str, data=(), args=(), fuel: int = 50_000_000):
    """Compile and run Minic source; return the RunResult."""
    program = compile_source(source)
    machine = Machine(program, fuel=fuel)
    return machine.run(InputSet.make("test", data=data, args=args))


@pytest.fixture()
def minic():
    """Helper fixture: run Minic source and return its RunResult."""
    return run_main
