"""Tests for the parallel experiment engine (:mod:`repro.core.parallel`).

The load-bearing property is *determinism*: warming the cache with worker
processes and then computing figures from it must produce byte-identical
rows and identical verdict sets to a fully serial run, because workers
only populate the cache and never influence the analysis itself.
"""

from __future__ import annotations

import os

import pytest

from repro.analysis import tables
from repro.core.experiment import ExperimentRunner, SuiteConfig
from repro.core.parallel import ParallelRunner, WarmStats, resolve_jobs
from repro.errors import ExperimentError

SCALE = 0.05
WORKLOADS = ("gzipish", "mcfish")
GRID = [(wl, inp, "gshare") for wl in WORKLOADS for inp in ("train", "ref")]


def _runner(cache_dir, jobs: int = 1) -> ExperimentRunner:
    return ExperimentRunner(SuiteConfig(scale=SCALE, cache_dir=cache_dir, jobs=jobs))


def _figure_rows(runner: ExperimentRunner) -> str:
    """Rendered COV/ACC rows — the text a figure would print."""
    rows = [
        {"workload": wl, **runner.evaluate(wl, "gshare").as_row()}
        for wl in WORKLOADS
    ]
    return tables.render_rows(rows, "determinism check")


def _verdicts(runner: ExperimentRunner) -> dict[str, tuple[int, ...]]:
    return {
        wl: tuple(sorted(runner.profile_2d(wl, "gshare").input_dependent_sites()))
        for wl in WORKLOADS
    }


def test_resolve_jobs():
    assert resolve_jobs(3) == 3
    assert resolve_jobs(1) == 1
    cores = os.cpu_count() or 1
    assert resolve_jobs(None) == cores
    assert resolve_jobs(0) == cores
    assert resolve_jobs(-2) == cores


def test_warm_stats_counts():
    stats = WarmStats(jobs=4, traces=3, sims=7)
    assert stats.artifacts == 10


def test_serial_warm_populates_cache(tmp_path):
    runner = _runner(tmp_path)
    stats = runner.prefetch([("mcfish", "train", "gshare")])
    assert stats == WarmStats(jobs=1, traces=1, sims=1)
    assert runner._trace_path("mcfish", "train").exists()
    assert runner._sim_path("mcfish", "train", "gshare").exists()


def test_warm_dedupes_specs(tmp_path):
    runner = _runner(tmp_path)
    stats = ParallelRunner(runner, jobs=1).warm(
        sims=[("mcfish", "train", "gshare")] * 3,
        traces=[("mcfish", "train"), ("mcfish", "train")],
    )
    # The sim's trace is implied; duplicates collapse.
    assert stats.traces == 1 and stats.sims == 1


def test_warm_without_disk_cache_falls_back_to_serial(tmp_path):
    runner = ExperimentRunner(
        SuiteConfig(scale=SCALE, cache_dir=tmp_path, use_disk_cache=False)
    )
    stats = ParallelRunner(runner, jobs=4).warm(sims=[("mcfish", "train", "gshare")])
    assert stats.sims == 1
    assert not runner._sim_path("mcfish", "train", "gshare").exists()
    # The artifacts were still computed (into the in-memory cache).
    assert ("mcfish", "train", "gshare") in runner._sims


def test_warm_propagates_worker_errors(tmp_path):
    runner = _runner(tmp_path, jobs=2)
    with pytest.raises(ExperimentError, match="no-such-workload"):
        runner.prefetch([("no-such-workload", "train", "gshare")])


@pytest.mark.slow
def test_parallel_warm_is_deterministic(tmp_path):
    """--jobs 4 then serial analysis == fully serial run, byte for byte."""
    serial = _runner(tmp_path / "serial")
    serial_rows = _figure_rows(serial)
    serial_verdicts = _verdicts(serial)

    parallel = _runner(tmp_path / "parallel", jobs=4)
    stats = parallel.prefetch(GRID)
    assert stats == WarmStats(jobs=4, traces=4, sims=4)
    for spec in GRID:
        assert parallel._sim_path(*spec).exists()

    # A fresh runner that only *reads* the parallel-warmed cache.
    reader = _runner(tmp_path / "parallel")
    assert _figure_rows(reader) == serial_rows
    assert _verdicts(reader) == serial_verdicts


@pytest.mark.slow
def test_parallel_warm_reuses_cached_traces(tmp_path):
    """A second warm pass finds everything cached and stays consistent."""
    runner = _runner(tmp_path, jobs=2)
    runner.prefetch(GRID)
    before = {spec: runner._sim_path(*spec).stat().st_mtime_ns for spec in GRID}

    again = _runner(tmp_path, jobs=2)
    again.prefetch(GRID)
    after = {spec: again._sim_path(*spec).stat().st_mtime_ns for spec in GRID}
    assert before == after, "warming an already-warm cache must not rewrite artifacts"
