"""Tests for the fleet layer: shard map, registry, router, merged metrics.

Everything here runs in-process (shard servers on :class:`ServerThread`,
the router on :class:`RouterThread`) so it stays in the fast tier; the
subprocess chaos tests (kill -9, rolling restart) live in
``tests/test_fleet_handoff.py`` under the ``slow`` marker.

The acceptance pins mirror the single-server suite: a report streamed
*through the router* is bit-identical to offline ``profile_trace``, and
a shard loss surfaces as a retriable error whose resume path lands on a
different shard and still reproduces the identical report.
"""

from __future__ import annotations

import json
from types import SimpleNamespace

import numpy as np
import pytest

from repro.core.profiler2d import ProfilerConfig, profile_trace
from repro.errors import ServiceError
from repro.fleet import SessionRegistry, ShardMap, ShardSpec
from repro.fleet.router import RouterThread
from repro.obs import Registry, labeled_snapshot, merge_additive_snapshot
from repro.predictors import make_predictor, simulate
from repro.service import protocol
from repro.service.client import StreamingClient, stream_simulation
from repro.service.protocol import serialize_report
from repro.service.server import ServerThread
from repro.trace.synthetic import phased_trace


@pytest.fixture(scope="module")
def stream_data():
    trace, _stationary, _phased = phased_trace(6, 3, 12_000, seed=7)
    sim = simulate(make_predictor("bimodal"), trace)
    config = ProfilerConfig().resolve(total_branches=len(trace))
    offline = serialize_report(profile_trace(trace, simulation=sim, config=config))
    return trace, sim, config, offline


# ----------------------------------------------------------------------
# Shard map (rendezvous hashing)
# ----------------------------------------------------------------------


def _map_of(*names: str) -> ShardMap:
    return ShardMap([ShardSpec(n, "127.0.0.1", 9000 + i) for i, n in enumerate(names)])


class TestShardMap:
    def test_route_is_deterministic(self):
        a = _map_of("s0", "s1", "s2")
        b = _map_of("s2", "s0", "s1")  # insertion order must not matter
        for i in range(100):
            session = f"session-{i}"
            assert a.route(session).name == b.route(session).name
            assert [s.name for s in a.ranked(session)] == [s.name for s in b.ranked(session)]

    def test_placement_spreads_across_shards(self):
        shard_map = _map_of(*(f"s{i}" for i in range(8)))
        counts: dict[str, int] = {}
        for i in range(2000):
            name = shard_map.route(f"session-{i}").name
            counts[name] = counts.get(name, 0) + 1
        assert len(counts) == 8
        # Rendezvous hashing is near-uniform; allow generous slack.
        assert min(counts.values()) > 2000 / 8 * 0.5
        assert max(counts.values()) < 2000 / 8 * 2.0

    def test_removing_a_shard_only_remaps_its_sessions(self):
        full = _map_of("s0", "s1", "s2", "s3")
        sessions = [f"session-{i}" for i in range(500)]
        before = {s: full.route(s).name for s in sessions}
        full.remove("s2")
        for session in sessions:
            after = full.route(session).name
            if before[session] != "s2":
                assert after == before[session]  # minimal disruption
            else:
                assert after != "s2"

    def test_replace_keeps_placement_across_address_change(self):
        shard_map = _map_of("s0", "s1")
        before = {f"x{i}": shard_map.route(f"x{i}").name for i in range(50)}
        shard_map.replace(ShardSpec("s0", "127.0.0.1", 19999))  # respawned shard
        assert {s: shard_map.route(s).name for s in before} == before

    def test_route_respects_liveness_and_falls_back_in_rank_order(self):
        shard_map = _map_of("s0", "s1", "s2")
        session = "pinned"
        ranked = [s.name for s in shard_map.ranked(session)]
        dead = {ranked[0]}
        chosen = shard_map.route(session, live=lambda n: n not in dead)
        assert chosen.name == ranked[1]
        assert shard_map.route(session, live=lambda n: False) is None


# ----------------------------------------------------------------------
# Snapshot helpers (fleet metric merging)
# ----------------------------------------------------------------------


class TestSnapshotMerging:
    def _shard_registry(self, frames: int, open_conns: int) -> Registry:
        reg = Registry()
        reg.counter("frames_total").inc(frames)
        reg.gauge("connections_open").set(open_conns)
        hist = reg.histogram("latency_seconds")
        for _ in range(frames):
            hist.observe(0.01)
        return reg

    def test_additive_merge_sums_counters_and_histograms(self):
        fleet = Registry()
        merge_additive_snapshot(fleet, self._shard_registry(5, 3).snapshot())
        merge_additive_snapshot(fleet, self._shard_registry(7, 9).snapshot())
        assert fleet.counter("frames_total").value == 12
        assert fleet.histogram("latency_seconds").count == 12

    def test_additive_merge_drops_gauges(self):
        """Gauge 'adopt' semantics would make the last shard win a sum."""
        fleet = Registry()
        merge_additive_snapshot(fleet, self._shard_registry(1, 3).snapshot())
        merge_additive_snapshot(fleet, self._shard_registry(1, 9).snapshot())
        assert "connections_open" not in fleet.snapshot()

    def test_labeled_snapshot_yields_per_shard_series(self):
        fleet = Registry()
        for name, frames in (("s0", 5), ("s1", 7)):
            shard = self._shard_registry(frames, 1).snapshot()
            fleet.merge_snapshot(labeled_snapshot(shard, {"shard": name}))
        snap = fleet.snapshot()
        labels = snap["frames_total"]["labels"]
        assert labels['shard="s0"']["value"] == 5
        assert labels['shard="s1"']["value"] == 7
        # Gauges stay visible per shard even though fleet sums drop them.
        assert snap["connections_open"]["labels"]['shard="s0"']["value"] == 1


# ----------------------------------------------------------------------
# Session registry
# ----------------------------------------------------------------------


class TestSessionRegistry:
    def test_record_lookup_roundtrip(self, tmp_path):
        registry = SessionRegistry(tmp_path)
        registry.record("run-a", "s1", 4000)
        entry = registry.lookup("run-a")
        assert entry["shard"] == "s1" and entry["events"] == 4000
        assert entry["status"] == "open"

    def test_missing_and_corrupt_read_as_absent(self, tmp_path):
        registry = SessionRegistry(tmp_path)
        assert registry.lookup("nope") is None
        (tmp_path / "bad.session.json").write_text("{not json")
        assert registry.lookup("bad") is None
        (tmp_path / "alist.session.json").write_text("[1, 2]")
        assert registry.lookup("alist") is None

    def test_remove_and_entries(self, tmp_path):
        registry = SessionRegistry(tmp_path)
        registry.record("a", "s0", 1)
        registry.record("b", "s1", 2)
        assert sorted(registry.entries()) == ["a", "b"]
        assert registry.remove("a") is True
        assert registry.remove("a") is False
        assert sorted(registry.entries()) == ["b"]

    def test_rejects_unsafe_session_names(self, tmp_path):
        registry = SessionRegistry(tmp_path)
        with pytest.raises(ServiceError):
            registry.record("../escape", "s0", 0)

    def test_record_survives_atomicity_check(self, tmp_path):
        """Records go through atomic publication (no torn .tmp leftovers)."""
        registry = SessionRegistry(tmp_path)
        for i in range(20):
            registry.record("hot", f"s{i % 3}", i)
        assert registry.lookup("hot")["events"] == 19
        assert not list(tmp_path.glob("*.tmp"))


# ----------------------------------------------------------------------
# Protocol forwarding helpers
# ----------------------------------------------------------------------


class TestEventReframing:
    def test_reframe_rewrites_only_the_session_id(self):
        sites = np.array([1, 5, 9], dtype=np.int64)
        correct = np.array([1, 0, 1], dtype=np.int64)
        frame = protocol.encode_events(42, sites, correct)
        payload = frame[protocol.HEADER_BYTES:]
        assert protocol.events_session_id(payload) == 42
        reframed = protocol.reframe_events(payload, 7)
        batch = protocol.decode_events(reframed[protocol.HEADER_BYTES:])
        assert batch.session_id == 7
        np.testing.assert_array_equal(batch.sites, sites)
        np.testing.assert_array_equal(batch.correct, correct)

    def test_truncated_payload_rejected(self):
        with pytest.raises(protocol.ProtocolError):
            protocol.events_session_id(b"\x00\x01")
        with pytest.raises(protocol.ProtocolError):
            protocol.reframe_events(b"\x00\x01", 1)


# ----------------------------------------------------------------------
# Router end to end (in-process shards)
# ----------------------------------------------------------------------


@pytest.fixture()
def fleet(tmp_path):
    """Two ServerThread shards sharing one checkpoint dir, one router."""
    ckpt_dir = tmp_path / "ckpt"
    shard_map = ShardMap()
    shards: dict[str, ServerThread] = {}
    for name in ("s0", "s1"):
        thread = ServerThread(checkpoint_dir=ckpt_dir, shard_name=name).start()
        shards[name] = thread
        shard_map.add(ShardSpec(name, "127.0.0.1", thread.port))
    router = RouterThread(shard_map=shard_map, registry_dir=tmp_path / "registry",
                          dead_cooldown=0.2).start()
    yield SimpleNamespace(router=router, shards=shards, shard_map=shard_map)
    router.shutdown()
    for thread in shards.values():
        if thread.is_alive():  # a test may have abort()ed it already
            thread.drain()


class TestRouterEndToEnd:
    def test_streamed_report_bit_identical_through_router(self, fleet, stream_data):
        trace, sim, config, offline = stream_data
        with StreamingClient("127.0.0.1", fleet.router.port) as client:
            outcome = stream_simulation(
                client, "run", trace.sites, sim.correct, config,
                batch_size=997, num_sites=trace.num_sites)
            assert outcome.completed
            assert client.query("run")["report"] == offline
            reply = client.close_session("run")
            assert reply["report"] == offline
        # A clean close clears the placement record.
        assert fleet.router.router.registry.lookup("run") is None

    def test_open_reply_names_the_owning_shard(self, fleet, stream_data):
        trace, _sim, config, _offline = stream_data
        expected = fleet.shard_map.route("placed").name
        with StreamingClient("127.0.0.1", fleet.router.port) as client:
            reply = client.open_session("placed", trace.num_sites, config)
            assert reply["shard"] == expected
            registry = fleet.router.router.registry
            assert registry.lookup("placed")["shard"] == expected
            client.close_session("placed")

    def test_sessions_spread_over_both_shards(self, fleet, stream_data):
        trace, _sim, config, _offline = stream_data
        owners = set()
        with StreamingClient("127.0.0.1", fleet.router.port) as client:
            for i in range(16):
                reply = client.open_session(f"spread-{i}", trace.num_sites, config)
                owners.add(reply["shard"])
            for i in range(16):
                client.close_session(f"spread-{i}")
        assert owners == {"s0", "s1"}

    def test_fleet_stats_sum_shards_and_break_out_per_shard(self, fleet, stream_data):
        trace, sim, config, _offline = stream_data
        with StreamingClient("127.0.0.1", fleet.router.port) as client:
            for i in range(8):
                stream_simulation(client, f"st-{i}", trace.sites[:2000],
                                  sim.correct[:2000], config,
                                  num_sites=trace.num_sites)
            reply = client.control({"op": "stats"})
        fleet_stats, per_shard = reply["stats"], reply["shards"]
        assert sorted(per_shard) == ["s0", "s1"]
        assert fleet_stats["shards"] == 2
        assert fleet_stats["events_total"] == 8 * 2000
        assert fleet_stats["events_total"] == sum(
            s["events_total"] for s in per_shard.values())
        assert fleet_stats["frame_latency"]["count"] == sum(
            s["frame_latency"]["count"] for s in per_shard.values())
        for name, stats in per_shard.items():
            assert stats["shard"] == name

    def test_merged_metrics_carry_shard_labels(self, fleet, stream_data):
        trace, sim, config, _offline = stream_data
        with StreamingClient("127.0.0.1", fleet.router.port) as client:
            for i in range(8):
                stream_simulation(client, f"mx-{i}", trace.sites[:1000],
                                  sim.correct[:1000], config,
                                  num_sites=trace.num_sites)
            snap = client.metrics()["snapshot"]
        events = snap["service_events_total"]
        labels = events["labels"]
        assert set(labels) == {'shard="s0"', 'shard="s1"'}
        # Fleet total == sum of the labeled per-shard series.
        assert events["value"] == 8 * 1000
        assert sum(child["value"] for child in labels.values()) == 8 * 1000
        # The router's own series ride along in the same snapshot.
        assert snap["router_frames_total"]["value"] > 0
        # JSON-safe end to end (the CLI dumps this verbatim).
        json.dumps(snap)

    def test_shard_loss_is_retriable_and_resume_lands_elsewhere(self, fleet, stream_data):
        trace, sim, config, offline = stream_data
        with StreamingClient("127.0.0.1", fleet.router.port) as client:
            outcome = stream_simulation(
                client, "run", trace.sites, sim.correct, config,
                batch_size=500, stop_after=4000, num_sites=trace.num_sites)
            assert not outcome.completed  # checkpointed at 4000
            owner = fleet.router.router.registry.lookup("run")["shard"]
            fleet.shards[owner].abort()  # SIGKILL-equivalent: no drain
            with pytest.raises(ServiceError, match="unavailable"):
                client.send_events("run", trace.sites[4000:4500],
                                   sim.correct[4000:4500])
        with StreamingClient("127.0.0.1", fleet.router.port) as client:
            outcome = stream_simulation(
                client, "run", trace.sites, sim.correct, config,
                batch_size=800, resume=True, num_sites=trace.num_sites)
            assert outcome.resumed_from == 4000
            assert client.query("run")["report"] == offline
            survivor = fleet.router.router.registry.lookup("run")["shard"]
            assert survivor != owner

    def test_query_routes_by_registry_without_a_conn_mapping(self, fleet, stream_data):
        trace, sim, config, offline = stream_data
        with StreamingClient("127.0.0.1", fleet.router.port) as client:
            stream_simulation(client, "run", trace.sites, sim.correct, config,
                              num_sites=trace.num_sites)
        # A *different* connection never opened the session; the registry
        # still routes its query to the owning shard.
        with StreamingClient("127.0.0.1", fleet.router.port) as client:
            assert client.query("run")["report"] == offline

    def test_bad_ops_get_error_replies_not_disconnects(self, fleet):
        with StreamingClient("127.0.0.1", fleet.router.port) as client:
            with pytest.raises(ServiceError, match="unknown control op"):
                client.control({"op": "frobnicate"})
            with pytest.raises(ServiceError, match="unknown session id"):
                client._checked(client._request(protocol.encode_events(
                    999, np.array([1], dtype=np.int64), np.array([1], dtype=np.int64))))
            assert client.ping()["router"] is True

    def test_fleet_drain_without_supervisor_is_an_error(self, fleet):
        with StreamingClient("127.0.0.1", fleet.router.port) as client:
            with pytest.raises(ServiceError, match="no supervisor"):
                client.control({"op": "fleet_drain"})
