"""Golden regression tests for figure rows.

``tests/golden/*.json`` pins the Figure 3, 4, 5, and 10 rows at the
test scale (0.05).  Any change to the pipeline — tracing, simulation,
profiling, ground truth — that shifts these numbers fails here, which is
the point: refactors (vectorized replay, parallel warming) must not move
results at all.

Regenerate after an *intentional* change with::

    REPRO_UPDATE_GOLDEN=1 PYTHONPATH=src python -m pytest tests/test_golden.py

and review the JSON diff like any other code change.
"""

from __future__ import annotations

import json
import math
import os
from pathlib import Path

import pytest

from repro.analysis import tables

GOLDEN_DIR = Path(__file__).parent / "golden"

#: JSON has no NaN; the paper's 0/0 cells round-trip as null.
FIGURES = {
    "fig3": tables.fig3_rows,
    "fig4": tables.fig4_rows,
    "fig5": tables.fig5_rows,
    "fig10": tables.fig10_rows,
}


def _canonical(rows: list[dict]) -> list[dict]:
    out = []
    for row in rows:
        canon = {}
        for key, value in row.items():
            if isinstance(value, float):
                canon[key] = None if math.isnan(value) else value
            else:
                canon[key] = value
        out.append(canon)
    return out


def _assert_rows_match(actual: list[dict], golden: list[dict], name: str) -> None:
    assert len(actual) == len(golden), f"{name}: row count changed"
    for i, (a_row, g_row) in enumerate(zip(actual, golden)):
        assert list(a_row) == list(g_row), f"{name} row {i}: columns changed"
        for key in g_row:
            a, g = a_row[key], g_row[key]
            where = f"{name} row {i} ({a_row.get('workload', '?')}) column {key!r}"
            if isinstance(g, float) and isinstance(a, (int, float)):
                assert a == pytest.approx(g, rel=1e-6, abs=1e-9), where
            else:
                assert a == g, where


@pytest.mark.slow
@pytest.mark.parametrize("name", sorted(FIGURES))
def test_figure_rows_match_golden(name: str, tiny_runner):
    actual = _canonical(FIGURES[name](tiny_runner))
    path = GOLDEN_DIR / f"{name}.json"
    if os.environ.get("REPRO_UPDATE_GOLDEN"):
        GOLDEN_DIR.mkdir(exist_ok=True)
        path.write_text(json.dumps(actual, indent=2) + "\n")
        pytest.skip(f"regenerated {path}")
    assert path.exists(), f"missing fixture {path}; run with REPRO_UPDATE_GOLDEN=1"
    golden = json.loads(path.read_text())
    _assert_rows_match(actual, golden, name)
