"""Tests for the 2D-profiling algorithm: online/offline equivalence,
detection behaviour on known synthetic phase structure, configuration
resolution, and the Figure 8 time-series surface.
"""

import numpy as np
import pytest

from repro.errors import ExperimentError
from repro.core.profiler2d import (
    OnlineProfilerTool,
    ProfilerConfig,
    TwoDProfiler,
    profile_trace,
)
from repro.predictors import make_predictor, simulate
from repro.trace.synthetic import phased_trace


@pytest.fixture(scope="module")
def mixed_trace():
    trace, stationary, phased = phased_trace(8, 4, 30_000, seed=21)
    sim = simulate(make_predictor("bimodal"), trace)
    return trace, sim, stationary, phased


class TestConfigResolution:
    def test_auto_slice_size_targets_slices(self):
        config = ProfilerConfig().resolve(total_branches=800_000)
        assert config.slice_size == 800_000 // 80

    def test_auto_slice_size_floor(self):
        config = ProfilerConfig().resolve(total_branches=1000)
        assert config.slice_size == 500

    def test_exec_threshold_scales_with_slice(self):
        config = ProfilerConfig(slice_size=15_000_000).resolve(0)
        assert config.exec_threshold == 1000  # The paper's exact ratio.

    def test_explicit_values_respected(self):
        config = ProfilerConfig(slice_size=1234, exec_threshold=7).resolve(10**9)
        assert config.slice_size == 1234 and config.exec_threshold == 7

    def test_pam_exact_forces_series(self):
        config = ProfilerConfig(slice_size=100, pam_exact=True).resolve(0)
        assert config.keep_series


class TestDetection:
    def test_phased_sites_detected(self, mixed_trace):
        trace, sim, stationary, phased = mixed_trace
        report = profile_trace(trace, simulation=sim)
        detected = report.input_dependent_sites()
        assert phased <= detected, f"missed {phased - detected}"

    def test_high_accuracy_stationary_not_detected(self, mixed_trace):
        trace, sim, stationary, phased = mixed_trace
        report = profile_trace(trace, simulation=sim)
        detected = report.input_dependent_sites()
        strong = {
            s for s in stationary
            if report.stats[s].mean > report.overall_accuracy
        }
        assert not (detected & strong)

    def test_verdict_fields_consistent(self, mixed_trace):
        trace, sim, _stationary, _phased = mixed_trace
        report = profile_trace(trace, simulation=sim)
        for site, verdict in report.verdicts().items():
            assert verdict.site_id == site
            assert verdict.n_slices > 0
            assert 0.0 <= verdict.mean <= 1.0
            assert verdict.input_dependent == (
                (verdict.passed_mean or verdict.passed_std) and verdict.passed_pam
            )

    def test_profiled_sites_subset_of_all(self, mixed_trace):
        trace, sim, _s, _p = mixed_trace
        report = profile_trace(trace, simulation=sim)
        assert report.input_dependent_sites() <= report.profiled_sites()
        assert all(0 <= s < trace.num_sites for s in report.profiled_sites())

    def test_no_fir_changes_std(self, mixed_trace):
        trace, sim, _s, _p = mixed_trace
        with_fir = profile_trace(trace, simulation=sim)
        without = profile_trace(
            trace, simulation=sim, config=ProfilerConfig(use_fir=False)
        )
        # The FIR filter smooths: per-branch std should not grow.
        for site in with_fir.profiled_sites():
            assert with_fir.stats[site].std <= without.stats[site].std + 1e-9


class TestOnlineOfflineEquivalence:
    def test_statistics_identical(self, mixed_trace):
        trace, sim, _s, _p = mixed_trace
        config = ProfilerConfig(slice_size=len(trace) // 50)
        offline = profile_trace(trace, simulation=sim, config=config)
        online = TwoDProfiler(trace.num_sites, config)
        for site, correct in zip(trace.sites.tolist(), sim.correct.tolist()):
            online.record(site, correct)
        online_report = online.finish()
        for site in range(trace.num_sites):
            a = offline.stats[site]
            b = online_report.stats[site]
            assert a.N == b.N
            assert a.SPA == pytest.approx(b.SPA, abs=1e-9)
            assert a.SSPA == pytest.approx(b.SSPA, abs=1e-9)
            assert a.NPAM == b.NPAM
        assert offline.input_dependent_sites() == online_report.input_dependent_sites()

    def test_online_requires_slice_size(self):
        with pytest.raises(ExperimentError, match="slice_size"):
            TwoDProfiler(4, ProfilerConfig())

    def test_partial_tail_slice_rule(self):
        # A tail of >= slice_size/2 branches is folded; a smaller one is not.
        config = ProfilerConfig(slice_size=100, exec_threshold=0)
        big_tail = TwoDProfiler(1, config)
        for _ in range(160):
            big_tail.record(0, 1)
        assert big_tail.finish().stats[0].N == 2

        small_tail = TwoDProfiler(1, config)
        for _ in range(140):
            small_tail.record(0, 1)
        assert small_tail.finish().stats[0].N == 1


class TestProfileTraceValidation:
    def test_requires_exactly_one_source(self, mixed_trace):
        trace, sim, _s, _p = mixed_trace
        with pytest.raises(ExperimentError, match="exactly one"):
            profile_trace(trace)
        with pytest.raises(ExperimentError, match="exactly one"):
            profile_trace(trace, predictor=make_predictor("bimodal"), simulation=sim)

    def test_mismatched_simulation_rejected(self, mixed_trace):
        trace, sim, _s, _p = mixed_trace
        short = trace.slice_view(0, len(trace) // 2)
        with pytest.raises(ExperimentError, match="match"):
            profile_trace(short, simulation=sim)

    def test_predictor_path_equals_simulation_path(self, mixed_trace):
        trace, sim, _s, _p = mixed_trace
        by_predictor = profile_trace(trace, predictor=make_predictor("bimodal"))
        by_simulation = profile_trace(trace, simulation=sim)
        assert (by_predictor.input_dependent_sites()
                == by_simulation.input_dependent_sites())


class TestSeries:
    def test_series_surface_shape(self, mixed_trace):
        trace, sim, _s, _p = mixed_trace
        config = ProfilerConfig(keep_series=True)
        report = profile_trace(trace, simulation=sim, config=config)
        slices = report.series.shape[0]
        assert report.series.shape == (slices, trace.num_sites)
        assert report.slice_overall.shape == (slices,)

    def test_site_series_values_in_range(self, mixed_trace):
        trace, sim, _s, _p = mixed_trace
        report = profile_trace(trace, simulation=sim,
                               config=ProfilerConfig(keep_series=True))
        site = next(iter(report.profiled_sites()))
        indices, accuracies = report.site_series(site)
        assert len(indices) == len(accuracies) > 0
        assert ((accuracies >= 0) & (accuracies <= 1)).all()

    def test_site_series_without_keep_raises(self, mixed_trace):
        trace, sim, _s, _p = mixed_trace
        report = profile_trace(trace, simulation=sim)
        with pytest.raises(ExperimentError, match="keep_series"):
            report.site_series(0)

    def test_slice_overall_tracks_program(self, mixed_trace):
        trace, sim, _s, _p = mixed_trace
        report = profile_trace(trace, simulation=sim,
                               config=ProfilerConfig(keep_series=True))
        assert report.slice_overall.mean() == pytest.approx(
            report.overall_accuracy, abs=0.02
        )


class TestExactPAM:
    def test_exact_pam_recomputes_npam(self, mixed_trace):
        trace, sim, _s, _p = mixed_trace
        running = profile_trace(trace, simulation=sim)
        exact = profile_trace(trace, simulation=sim,
                              config=ProfilerConfig(pam_exact=True))
        # The running-mean approximation (paper footnote 5) tracks the
        # exact points-above-mean count loosely on phased branches: the
        # running mean trails a step change, so bound at a third of N.
        for site in range(trace.num_sites):
            if running.stats[site].N:
                assert abs(running.stats[site].NPAM - exact.stats[site].NPAM) <= max(
                    3, running.stats[site].N // 3
                )


class TestOnlineProfilerTool:
    def test_tool_combines_predictor_and_profiler(self, mixed_trace):
        trace, _sim, _s, _p = mixed_trace
        config = ProfilerConfig(slice_size=len(trace) // 40)
        tool = OnlineProfilerTool(make_predictor("bimodal"), trace.num_sites, config)
        for site, taken in zip(trace.sites.tolist(), trace.outcomes.tolist()):
            tool.on_branch(site, taken)
        report = tool.finish()
        offline = profile_trace(trace, predictor=make_predictor("bimodal"), config=config)
        assert report.input_dependent_sites() == offline.input_dependent_sites()


def _exact_report_fingerprint(report):
    """Every per-site scalar plus the report-level summary, bit-exact.

    Floats are compared through ``.hex()`` so the assertion fails on any
    bit difference rather than hiding one behind ``==`` tolerance quirks
    (e.g. ``-0.0 == 0.0``).
    """
    rows = []
    for s in report.stats:
        rows.append((
            s.N,
            float(s.SPA).hex(),
            float(s.SSPA).hex(),
            s.NPAM,
            float(s.LPA).hex(),
            s.exec_counter,
            s.predict_counter,
        ))
    return (
        rows,
        float(report.overall_accuracy).hex(),
        report.profiled_sites(),
        report.input_dependent_sites(),
    )


def _tool_report(trace, config):
    """Replay ``trace`` through the online tool with a fresh predictor."""
    tool = OnlineProfilerTool(make_predictor("bimodal"), trace.num_sites, config)
    for site, taken in zip(trace.sites.tolist(), trace.outcomes.tolist()):
        tool.on_branch(site, taken)
    return tool.finish()


class TestTruncatedTraceEquivalence:
    """OnlineProfilerTool must match offline profile_trace bit-for-bit on
    truncated prefixes — the property the streaming service relies on when
    a producer dies mid-slice and the run is replayed from a checkpoint.
    """

    SLICE = 600

    def _compare(self, mixed_trace, length):
        trace, _sim, _s, _p = mixed_trace
        short = trace.slice_view(0, length)
        config = ProfilerConfig(slice_size=self.SLICE)
        offline = profile_trace(
            short, predictor=make_predictor("bimodal"), config=config
        )
        online = _tool_report(short, config)
        assert _exact_report_fingerprint(online) == _exact_report_fingerprint(offline)

    def test_mid_slice_truncations(self, mixed_trace):
        # Cuts landing at awkward offsets inside a slice, including one
        # event past a boundary and one event before the next boundary.
        for length in (self.SLICE * 7 + 1, self.SLICE * 11 - 1,
                       self.SLICE * 13 + 317):
            self._compare(mixed_trace, length)

    def test_empty_last_slice(self, mixed_trace):
        # Length an exact multiple of slice_size: the final slice closes
        # on the last event and finish() must not fold a phantom tail.
        self._compare(mixed_trace, self.SLICE * 9)

    def test_single_slice_run(self, mixed_trace):
        self._compare(mixed_trace, self.SLICE)

    def test_sub_slice_run_folds_big_tail(self, mixed_trace):
        # Shorter than one slice but >= slice_size/2: folded as one slice.
        self._compare(mixed_trace, self.SLICE // 2 + 10)

    def test_sub_half_slice_run_drops_tail(self, mixed_trace):
        # Shorter than slice_size/2: no slice at all, nothing profiled.
        trace, _sim, _s, _p = mixed_trace
        short = trace.slice_view(0, self.SLICE // 2 - 10)
        config = ProfilerConfig(slice_size=self.SLICE)
        report = _tool_report(short, config)
        assert report.profiled_sites() == set()
        self._compare(mixed_trace, self.SLICE // 2 - 10)


class TestStateRoundtrip:
    def test_mid_slice_snapshot_resumes_identically(self, mixed_trace):
        trace, sim, _s, _p = mixed_trace
        config = ProfilerConfig(slice_size=700)
        sites = trace.sites.tolist()
        correct = sim.correct.tolist()
        cut = 700 * 5 + 123  # mid-slice

        straight = TwoDProfiler(trace.num_sites, config)
        for site, ok in zip(sites, correct):
            straight.record(site, ok)

        first = TwoDProfiler(trace.num_sites, config)
        for site, ok in zip(sites[:cut], correct[:cut]):
            first.record(site, ok)
        resumed = TwoDProfiler.from_state(first.state_dict())
        for site, ok in zip(sites[cut:], correct[cut:]):
            resumed.record(site, ok)

        assert (_exact_report_fingerprint(resumed.finish())
                == _exact_report_fingerprint(straight.finish()))

    def test_state_dict_snapshot_is_independent(self, mixed_trace):
        trace, sim, _s, _p = mixed_trace
        config = ProfilerConfig(slice_size=500)
        profiler = TwoDProfiler(trace.num_sites, config)
        profiler.record_batch(trace.sites[:2000], sim.correct[:2000])
        state = profiler.state_dict()
        profiler.record_batch(trace.sites[2000:4000], sim.correct[2000:4000])
        # Mutating the original after the snapshot must not leak through.
        assert int(state["total_branches"]) == 2000
        clone = TwoDProfiler.from_state(state)
        assert clone.total_branches == 2000
        assert profiler.total_branches == 4000

    def test_from_state_rejects_bad_version(self, mixed_trace):
        trace, _sim, _s, _p = mixed_trace
        profiler = TwoDProfiler(trace.num_sites, ProfilerConfig(slice_size=500))
        state = profiler.state_dict()
        state["state_version"] = np.int64(99)
        with pytest.raises(ExperimentError, match="version"):
            TwoDProfiler.from_state(state)

    def test_from_state_rejects_missing_array(self, mixed_trace):
        trace, _sim, _s, _p = mixed_trace
        profiler = TwoDProfiler(trace.num_sites, ProfilerConfig(slice_size=500))
        state = profiler.state_dict()
        del state["SPA"]
        with pytest.raises(ExperimentError):
            TwoDProfiler.from_state(state)


class TestRecordBatchEquivalence:
    def test_odd_chunking_matches_scalar_record(self, mixed_trace):
        trace, sim, _s, _p = mixed_trace
        config = ProfilerConfig(slice_size=640)
        scalar = TwoDProfiler(trace.num_sites, config)
        for site, ok in zip(trace.sites.tolist(), sim.correct.tolist()):
            scalar.record(site, ok)

        batched = TwoDProfiler(trace.num_sites, config)
        pos = 0
        step = 1
        while pos < len(trace):
            stop = min(pos + step, len(trace))
            batched.record_batch(trace.sites[pos:stop], sim.correct[pos:stop])
            pos = stop
            step = step * 3 + 1  # 1, 4, 13, ... crosses boundaries unevenly

        assert (_exact_report_fingerprint(batched.finish())
                == _exact_report_fingerprint(scalar.finish()))

    def test_batch_site_range_checked(self):
        profiler = TwoDProfiler(4, ProfilerConfig(slice_size=100))
        with pytest.raises(ExperimentError, match="beyond"):
            profiler.record_batch(np.array([0, 7]), np.array([1, 0]))

    def test_empty_batch_is_noop(self):
        profiler = TwoDProfiler(4, ProfilerConfig(slice_size=100))
        profiler.record_batch(np.array([], dtype=np.int64),
                              np.array([], dtype=np.int64))
        assert profiler.finish().profiled_sites() == set()
