"""Unit tests for the trace container, capture, and synthetic generators."""

import numpy as np
import pytest

from repro.errors import TraceError
from repro.lang import compile_source
from repro.trace import BranchTrace, capture_trace
from repro.trace.synthetic import (
    SiteSpec,
    bernoulli_site,
    interleave_sites,
    loop_site,
    pattern_site,
    phased_trace,
)
from repro.vm import InputSet


def small_trace():
    return BranchTrace(
        program="p",
        input_name="i",
        num_sites=3,
        sites=np.array([0, 1, 0, 2, 0], dtype=np.int32),
        outcomes=np.array([1, 0, 1, 1, 0], dtype=np.uint8),
        instructions=50,
    )


class TestBranchTrace:
    def test_length(self):
        assert len(small_trace()) == 5

    def test_mismatched_arrays_rejected(self):
        with pytest.raises(TraceError, match="same length"):
            BranchTrace("p", "i", 3, np.array([0, 1]), np.array([1]))

    def test_site_beyond_num_sites_rejected(self):
        with pytest.raises(TraceError, match="beyond num_sites"):
            BranchTrace("p", "i", 2, np.array([0, 5]), np.array([1, 0]))

    def test_from_packed(self):
        trace = BranchTrace.from_packed([0 * 2 + 1, 3 * 2 + 0, 1 * 2 + 1], "p", "i", 4)
        assert trace.sites.tolist() == [0, 3, 1]
        assert trace.outcomes.tolist() == [1, 0, 1]

    def test_execution_counts(self):
        assert small_trace().execution_counts().tolist() == [3, 1, 1]

    def test_taken_counts(self):
        assert small_trace().taken_counts().tolist() == [2, 0, 1]

    def test_site_bias(self):
        bias = small_trace().site_bias()
        assert bias[0] == pytest.approx(2 / 3)
        assert bias[1] == 0.0

    def test_executed_sites(self):
        assert small_trace().executed_sites().tolist() == [0, 1, 2]

    def test_slice_view(self):
        view = small_trace().slice_view(1, 4)
        assert view.sites.tolist() == [1, 0, 2]
        assert len(view) == 3

    def test_save_load_roundtrip(self, tmp_path):
        trace = small_trace()
        path = tmp_path / "t.npz"
        trace.save(path)
        loaded = BranchTrace.load(path)
        assert loaded.program == "p" and loaded.input_name == "i"
        assert loaded.instructions == 50
        assert np.array_equal(loaded.sites, trace.sites)
        assert np.array_equal(loaded.outcomes, trace.outcomes)

    def test_load_garbage_raises(self, tmp_path):
        path = tmp_path / "bad.npz"
        path.write_bytes(b"not a trace")
        with pytest.raises(TraceError):
            BranchTrace.load(path)


class TestCapture:
    def test_capture_matches_program_behavior(self):
        source = """
        func main() {
            var i;
            for (i = 0; i < 10; i += 1) { }
            return i;
        }
        """
        program = compile_source(source)
        trace = capture_trace(program, InputSet.make("t"))
        # One loop branch executed 11 times (10 continue + 1 exit).
        assert len(trace) == 11
        assert trace.num_sites == program.num_sites
        assert trace.instructions > 0


class TestSynthetic:
    def test_bernoulli_deterministic(self):
        spec = SiteSpec.stationary(0.5)
        a = bernoulli_site(100, spec, seed=1)
        b = bernoulli_site(100, spec, seed=1)
        assert np.array_equal(a, b)

    def test_bernoulli_respects_probability(self):
        outcomes = bernoulli_site(20_000, SiteSpec.stationary(0.8), seed=2)
        assert outcomes.mean() == pytest.approx(0.8, abs=0.02)

    def test_two_phase_changes_rate(self):
        outcomes = bernoulli_site(20_000, SiteSpec.two_phase(0.1, 0.9), seed=3)
        first, second = outcomes[:10_000], outcomes[10_000:]
        assert first.mean() < 0.2 and second.mean() > 0.8

    def test_loop_site_structure(self):
        outcomes = loop_site([3, 2])
        assert outcomes.tolist() == [1, 1, 0, 1, 0]

    def test_loop_site_skips_nonpositive(self):
        assert loop_site([0, -1, 2]).tolist() == [1, 0]

    def test_pattern_site(self):
        assert pattern_site("TN", 2).tolist() == [1, 0, 1, 0]

    def test_interleave_preserves_per_site_order(self):
        streams = {0: np.array([1, 1, 0], dtype=np.uint8),
                   1: np.array([0, 1], dtype=np.uint8)}
        trace = interleave_sites(streams, seed=4)
        for site, stream in streams.items():
            mask = trace.sites == site
            assert np.array_equal(trace.outcomes[mask], stream)

    def test_interleave_counts(self):
        streams = {0: np.ones(5, dtype=np.uint8), 2: np.zeros(3, dtype=np.uint8)}
        trace = interleave_sites(streams, seed=5)
        counts = trace.execution_counts()
        assert counts[0] == 5 and counts[1] == 0 and counts[2] == 3

    def test_phased_trace_shape(self):
        trace, stationary, phased = phased_trace(3, 2, 100, seed=6)
        assert len(stationary) == 3 and len(phased) == 2
        assert len(trace) == 5 * 100
        assert stationary.isdisjoint(phased)
