"""Tests for the regression triage engine (bisection, scoring, reports).

The determinism bar mirrors the ISSUE acceptance criteria: the bisection
must return a *minimal* site set that verifiably reproduces the
classification flip, must not depend on candidate iteration order
(hypothesis property), and must survive ``kill -9`` mid-search with a
bit-identical final report after resume.
"""

from __future__ import annotations

import json
import os
import signal
import subprocess
import sys
import time
from pathlib import Path

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.errors import TriageError
from repro.store import ProfileWarehouse, reclassify
from repro.triage import (
    BisectionEngine,
    TriageReport,
    load_report,
    score_sites,
    seeded_run_pair,
    synth_pair,
    triage_runs,
)

REGRESSED = (3, 7, 11)


@pytest.fixture()
def warehouse(tmp_path):
    return ProfileWarehouse(tmp_path / "wh")


@pytest.fixture()
def pair(warehouse):
    """(warehouse, good StoredRun, bad StoredRun) for the default seed."""
    good_id, bad_id = seeded_run_pair(warehouse, regressed=REGRESSED)
    return warehouse, warehouse.open_run(good_id), warehouse.open_run(bad_id)


# ----------------------------------------------------------------------
# The synthetic pair itself
# ----------------------------------------------------------------------


class TestSynthPair:
    def test_known_regression_by_construction(self, pair):
        _wh, good, bad = pair
        assert reclassify(good)["input_dependent"] == [0]
        assert reclassify(bad)["input_dependent"] == [0, *REGRESSED]

    def test_counts_bit_match_recorded_overall(self, pair):
        """The pair must run the engine in its count-coupled mode."""
        _wh, good, bad = pair
        for run in (good, bad):
            exec_counts, correct_counts = run.counts()
            ratio = int(np.sum(correct_counts)) / int(np.sum(exec_counts))
            assert float(ratio) == run.record.overall_accuracy

    def test_same_seed_is_bit_identical(self):
        a = synth_pair(seed=11)[2].series
        b = synth_pair(seed=11)[2].series
        assert np.array_equal(a, b)
        assert not np.array_equal(a, synth_pair(seed=12)[2].series)

    def test_anchor_site_is_reserved(self):
        with pytest.raises(ValueError):
            synth_pair(regressed=(0, 3))


# ----------------------------------------------------------------------
# Bisection
# ----------------------------------------------------------------------


class TestBisection:
    def test_minimal_set_is_the_injected_regression(self, pair):
        _wh, good, bad = pair
        engine = BisectionEngine(good, bad)
        assert engine._mode == "coupled"
        assert engine.minimal_flipping_set() == sorted(REGRESSED)

    def test_endpoints_agree_with_reclassify(self, pair):
        """verdict(∅) / verdict(all) anchor to the warehouse query engine."""
        _wh, good, bad = pair
        engine = BisectionEngine(good, bad)
        assert sorted(engine.base_bad) == reclassify(bad)["input_dependent"]
        assert sorted(engine.base_good) == reclassify(good)["input_dependent"]

    def test_minimal_set_reproduces_the_flip(self, pair):
        _wh, good, bad = pair
        engine = BisectionEngine(good, bad)
        minimal = engine.minimal_flipping_set()
        assert engine._verdict(frozenset(minimal)) == engine.base_good

    def test_minimal_set_is_one_minimal(self, pair):
        _wh, good, bad = pair
        engine = BisectionEngine(good, bad)
        minimal = engine.minimal_flipping_set()
        for site in minimal:
            trimmed = frozenset(s for s in minimal if s != site)
            assert engine._verdict(trimmed) != engine.base_good, (
                f"site {site} is not necessary; the set is not minimal")

    def test_no_regression_means_empty_set(self, warehouse):
        good_id, _ = seeded_run_pair(warehouse)
        good = warehouse.open_run(good_id)
        engine = BisectionEngine(good, good)
        assert engine.minimal_flipping_set() == []
        assert engine.run()["verified"] is True

    def test_mismatched_programs_rejected(self, warehouse, tmp_path):
        good_id, _ = seeded_run_pair(warehouse)
        other = ProfileWarehouse(tmp_path / "other")
        small_id, _ = seeded_run_pair(other, num_sites=12, regressed=(2,))
        with pytest.raises(TriageError):
            BisectionEngine(warehouse.open_run(good_id),
                            other.open_run(small_id))

    def test_decoupled_fallback_without_counts(self, warehouse):
        good_report, _gs, bad_report, _bs = synth_pair(regressed=REGRESSED)
        good_id = warehouse.ingest(good_report, workload="w", input_name="a",
                                   predictor="gshare")
        bad_id = warehouse.ingest(bad_report, workload="w", input_name="b",
                                  predictor="gshare")
        engine = BisectionEngine(warehouse.open_run(good_id),
                                 warehouse.open_run(bad_id))
        assert engine._mode == "decoupled"
        assert engine.minimal_flipping_set() == sorted(REGRESSED)

    def test_threshold_flips_actually_flip(self, pair):
        _wh, good, bad = pair
        engine = BisectionEngine(good, bad)
        engine.minimal_flipping_set()
        flips = engine.threshold_flips()
        assert set(flips) == {str(s) for s in REGRESSED}
        for site_str, entry in flips.items():
            site = int(site_str)
            assert site in reclassify(bad)["input_dependent"]
            std_flip = entry["std_th"]
            # Just past the flip point the STD test no longer carries
            # the site, and the bad run's verdict for it changes.
            relabeled = reclassify(bad, std_th=std_flip + 1e-6)
            assert site not in relabeled["input_dependent"]


# ----------------------------------------------------------------------
# Determinism properties (ISSUE satellite)
# ----------------------------------------------------------------------


class _ShuffledEngine(BisectionEngine):
    """Engine whose candidate iteration order is adversarially permuted."""

    def __init__(self, *args, order=None, **kwargs):
        self._order = order
        super().__init__(*args, **kwargs)

    def candidates(self):
        sites = super().candidates()
        if self._order is None:
            return sites
        rng = np.random.RandomState(self._order)
        return [sites[i] for i in rng.permutation(len(sites))]


class TestDeterminismProperties:
    @settings(max_examples=12, deadline=None,
              suppress_health_check=[HealthCheck.function_scoped_fixture])
    @given(order=st.integers(min_value=0, max_value=2**31 - 1))
    def test_result_invariant_to_candidate_order(self, pair, order):
        _wh, good, bad = pair
        engine = _ShuffledEngine(good, bad, order=order)
        assert engine.minimal_flipping_set() == sorted(REGRESSED)

    @settings(max_examples=8, deadline=None)
    @given(
        seed=st.integers(min_value=0, max_value=2**16),
        regressed=st.sets(st.integers(min_value=1, max_value=15),
                          min_size=1, max_size=4),
    )
    def test_minimal_set_flips_for_arbitrary_regressions(
            self, tmp_path_factory, seed, regressed):
        wh = ProfileWarehouse(
            tmp_path_factory.mktemp("prop") / "wh")
        good_id, bad_id = seeded_run_pair(
            wh, num_sites=16, n_slices=32,
            regressed=tuple(sorted(regressed)), seed=seed)
        good, bad = wh.open_run(good_id), wh.open_run(bad_id)
        engine = BisectionEngine(good, bad)
        minimal = engine.minimal_flipping_set()
        # The reported set reproduces the flip when substituted back ...
        assert engine._verdict(frozenset(minimal)) == engine.base_good
        # ... and is 1-minimal.
        for site in minimal:
            trimmed = frozenset(s for s in minimal if s != site)
            assert engine._verdict(trimmed) != engine.base_good
        # The injected sites that actually flipped are all found.
        flipped = set(engine.base_bad) - set(engine.base_good)
        assert flipped <= set(regressed) | {0}
        assert set(minimal) <= flipped | set(regressed)


# ----------------------------------------------------------------------
# Resumable state
# ----------------------------------------------------------------------


class TestResumableState:
    def test_resume_replays_from_cache(self, pair, tmp_path):
        wh, good, bad = pair
        state = tmp_path / "state.json"
        first = triage_runs(wh, good, bad, state_path=state)
        assert first.bisect["evals"] > 0 and not first.bisect["resumed"]
        second = triage_runs(wh, good, bad, state_path=state)
        assert second.bisect["evals"] == 0 and second.bisect["resumed"]
        assert second.render() == first.render()
        assert second.bisect["minimal_set"] == first.bisect["minimal_set"]

    def test_state_key_mismatch_starts_fresh(self, pair, tmp_path):
        wh, good, bad = pair
        state = tmp_path / "state.json"
        triage_runs(wh, good, bad, state_path=state)
        fresh = triage_runs(wh, good, bad, std_th=0.06, state_path=state)
        assert not fresh.bisect["resumed"]

    def test_corrupt_state_starts_fresh(self, pair, tmp_path):
        wh, good, bad = pair
        state = tmp_path / "state.json"
        state.write_text("{torn json", "utf-8")
        report = triage_runs(wh, good, bad, state_path=state)
        assert not report.bisect["resumed"]
        assert report.bisect["minimal_set"] == sorted(REGRESSED)

    def test_kill9_mid_search_then_resume_is_identical(self, pair, tmp_path):
        """SIGKILL a slowed bisection, resume, compare to an unkilled run."""
        wh, good, bad = pair
        state = tmp_path / "state.json"
        script = (
            "from repro.store import ProfileWarehouse\n"
            "from repro.triage import triage_runs\n"
            f"wh = ProfileWarehouse({str(wh.root)!r}, create=False)\n"
            f"triage_runs(wh, {good.run_id!r}, {bad.run_id!r}, "
            f"state_path={str(state)!r})\n"
        )
        env = dict(os.environ, REPRO_TRIAGE_STEP_DELAY="0.25",
                   PYTHONPATH=str(Path(__file__).parent.parent / "src"))
        proc = subprocess.Popen([sys.executable, "-c", script], env=env)
        deadline = time.time() + 30
        while time.time() < deadline and not state.exists():
            time.sleep(0.05)  # wait for the first persisted evaluation
        assert state.exists(), "bisection never persisted state"
        os.kill(proc.pid, signal.SIGKILL)
        proc.wait()

        doc = json.loads(state.read_text("utf-8"))
        persisted = len(doc["decisions"])
        resumed = triage_runs(wh, good, bad, state_path=state)
        assert resumed.bisect["resumed"]
        assert resumed.bisect["cached_evals"] >= persisted > 0
        fresh = triage_runs(wh, good, bad, state_path=tmp_path / "fresh.json")
        assert resumed.render() == fresh.render()
        assert resumed.bisect["minimal_set"] == fresh.bisect["minimal_set"]


# ----------------------------------------------------------------------
# Suspiciousness scoring
# ----------------------------------------------------------------------


class TestSuspicion:
    def test_regressed_sites_rank_first(self, pair):
        _wh, good, bad = pair
        rows = score_sites(good, bad)
        assert [row["site"] for row in rows[:3]] == sorted(REGRESSED)
        assert all(rows[i]["score"] >= rows[i + 1]["score"]
                   for i in range(len(rows) - 1))

    def test_row_fields_are_json_safe(self, pair):
        _wh, good, bad = pair
        rows = score_sites(good, bad)
        json.dumps(rows)
        for row in rows:
            assert 0.0 <= row["ochiai"] <= 1.0
            assert 0.0 <= row["tarantula"] <= 1.0
            assert row["bad_low"] <= row["bad_total"]
            assert row["good_low"] <= row["good_total"]

    def test_phase_shape_signature(self, pair):
        """A regression shows as flat -> level-shift; clean sites stay flat."""
        _wh, good, bad = pair
        by_site = {row["site"]: row for row in score_sites(good, bad)}
        for site in REGRESSED:
            assert by_site[site]["shape_good"] == "flat"
            assert by_site[site]["shape_bad"] == "level-shift"
            assert not by_site[site]["dependent_good"]
            assert by_site[site]["dependent_bad"]
        assert by_site[5]["shape_bad"] == "flat"


# ----------------------------------------------------------------------
# Report artifact
# ----------------------------------------------------------------------


class TestReportArtifact:
    def test_json_roundtrip_and_atomic_write(self, pair, tmp_path):
        wh, good, bad = pair
        report = triage_runs(wh, good, bad, thresholds_search=True)
        path = report.write(tmp_path / "triage_report.json")
        loaded = load_report(path)
        assert isinstance(loaded, TriageReport)
        assert loaded.bisect == report.bisect
        assert loaded.suspicion == report.suspicion
        assert not list(tmp_path.glob("*.tmp"))

    def test_render_has_no_wall_clock_data(self, pair):
        wh, good, bad = pair
        report = triage_runs(wh, good, bad)
        rendered = report.render()
        assert "wall" not in rendered
        assert str(report.bisect["minimal_set"]) in rendered
        assert report.meta["wall_seconds"] >= 0


# ----------------------------------------------------------------------
# Golden-fixture guard (shared with the CI triage-smoke job)
# ----------------------------------------------------------------------

GOLDEN = Path(__file__).parent / "golden" / "triage_bisect_synth.txt"


class TestGoldenGuard:
    """``db bisect`` output over the seeded synthetic pair is pinned.

    The CI ``triage-smoke`` job seeds the same pair (same seed, same
    MT19937 stream), bisects it — including a kill -9 / resume leg — and
    diffs stdout against this fixture, so the rendering, the ranking,
    and the minimal set itself are all frozen byte for byte.
    """

    def test_cli_bisect_matches_fixture(self, warehouse, capsys):
        from repro.cli import main

        seeded_run_pair(warehouse, regressed=REGRESSED)
        assert main(["db", "bisect", "r000001", "r000002",
                     "--thresholds", "--store", str(warehouse.root)]) == 0
        actual = capsys.readouterr().out
        if os.environ.get("REPRO_UPDATE_GOLDEN"):
            GOLDEN.parent.mkdir(exist_ok=True)
            GOLDEN.write_text(actual)
            pytest.skip(f"regenerated {GOLDEN}")
        assert GOLDEN.exists(), (
            f"missing fixture {GOLDEN}; run with REPRO_UPDATE_GOLDEN=1")
        assert actual == GOLDEN.read_text(), (
            "triage output drifted; if intentional, regenerate with "
            "REPRO_UPDATE_GOLDEN=1 and review the diff")
