"""Tests for CFG construction, dominators, loops, and region shapes."""


from repro.bytecode.cfg import (
    analyze_program,
    build_cfg,
    convertible_branches,
)
from repro.lang import compile_source
from repro.workloads import all_workloads


def cfg_of(source, function="main"):
    program = compile_source(source)
    func = program.functions[program.func_index[function]]
    return program, build_cfg(func)


class TestBlocks:
    def test_straight_line_single_reachable_block(self):
        _program, cfg = cfg_of("func main() { var x = 1; x += 2; return x; }")
        # The compiler emits an implicit `return 0` epilogue, unreachable
        # here; exactly one block is reachable.
        reachable = [b for b in cfg.blocks if b.index == 0 or b.predecessors]
        assert len(reachable) == 1
        assert reachable[0].successors == []

    def test_blocks_partition_instructions(self):
        source = """
        func main() {
            var x = arg(0);
            if (x > 0) { x += 1; } else { x -= 1; }
            while (x > 0) { x -= 2; }
            return x;
        }
        """
        _program, cfg = cfg_of(source)
        covered = sorted(pc for block in cfg.blocks for pc in range(block.start, block.end))
        assert covered == list(range(len(cfg.function.ops)))

    def test_edges_are_symmetric(self):
        source = "func main() { var i; for (i = 0; i < 5; i += 1) { if (i % 2) { output(i); } } return i; }"
        _program, cfg = cfg_of(source)
        for block in cfg.blocks:
            for successor in block.successors:
                assert block.index in cfg.blocks[successor].predecessors


class TestDominators:
    def test_entry_dominates_all_reachable(self):
        source = """
        func main() {
            var x = arg(0);
            if (x) { x += 1; } else { x += 2; }
            return x;
        }
        """
        _program, cfg = cfg_of(source)
        for block in cfg.blocks:
            if block.predecessors or block.index == 0:
                assert cfg.dominates(0, block.index)

    def test_branch_block_dominates_join(self):
        source = """
        func main() {
            var x = arg(0);
            if (x) { x += 1; }
            output(x);
            return x;
        }
        """
        _program, cfg = cfg_of(source)
        # The block containing the branch dominates the join block (the
        # block with two predecessors, where control re-converges).
        branch_block = cfg.block_at(cfg.function.ops.index(45))  # BR_FALSE pc
        joins = [b for b in cfg.blocks if len(b.predecessors) == 2]
        assert joins
        assert cfg.dominates(branch_block.index, joins[0].index)

    def test_sides_do_not_dominate_join(self):
        source = """
        func main() {
            var x = arg(0);
            if (x) { x += 1; } else { x -= 1; }
            return x;
        }
        """
        _program, cfg = cfg_of(source)
        # Find the diamond join: a block with two predecessors.
        joins = [b for b in cfg.blocks if len(b.predecessors) == 2]
        assert joins
        join = joins[0]
        for side in join.predecessors:
            assert not cfg.dominates(side, join.index) or side == join.index


class TestLoops:
    def test_while_loop_detected(self):
        source = "func main() { var i = 0; while (i < 9) { i += 1; } return i; }"
        _program, cfg = cfg_of(source)
        assert cfg.loop_headers

    def test_loop_body_membership(self):
        source = "func main() { var i = 0; while (i < 9) { i += 1; } return i; }"
        _program, cfg = cfg_of(source)
        header = next(iter(cfg.loop_headers))
        body = cfg.loop_blocks[header]
        assert header in body and len(body) >= 2

    def test_nested_loops_two_headers(self):
        source = """
        func main() {
            var s = 0;
            var i; var j;
            for (i = 0; i < 3; i += 1) {
                for (j = 0; j < 3; j += 1) { s += 1; }
            }
            return s;
        }
        """
        _program, cfg = cfg_of(source)
        assert len(cfg.loop_headers) == 2

    def test_straight_line_has_no_loops(self):
        _program, cfg = cfg_of("func main() { return 1; }")
        assert not cfg.loop_headers


class TestRegions:
    def find_region(self, source, line_marker=None):
        program = compile_source(source)
        regions = analyze_program(program)
        return program, regions

    def test_if_without_else_is_hammock(self):
        source = """
        func main() {
            var x = arg(0);
            if (x > 0) { x += 5; }
            return x;
        }
        """
        program, regions = self.find_region(source)
        shapes = [r.shape for r in regions.values()]
        assert "hammock" in shapes

    def test_if_else_is_diamond(self):
        source = """
        func main() {
            var x = arg(0);
            if (x > 0) { x += 5; } else { x -= 5; }
            return x;
        }
        """
        program, regions = self.find_region(source)
        shapes = [r.shape for r in regions.values()]
        assert "diamond" in shapes

    def test_loop_branch_is_other(self):
        source = "func main() { var i = 0; while (i < 4) { i += 1; } return i; }"
        program, regions = self.find_region(source)
        loop_sites = [s.site_id for s in program.sites if s.kind == "loop"]
        assert all(regions[s].shape == "other" for s in loop_sites)

    def test_early_return_arm_is_other(self):
        source = """
        func main() {
            var x = arg(0);
            if (x > 0) { return 1; }
            return 0;
        }
        """
        program, regions = self.find_region(source)
        # The then-arm ends in RET: no join, not convertible.
        assert all(r.shape == "other" for r in regions.values())

    def test_convertible_branches_subset(self):
        source = """
        func main() {
            var x = arg(0);
            if (x > 0) { x += 1; }               // hammock
            if (x > 5) { x += 2; } else { x -= 2; }  // diamond
            while (x > 0) { x -= 1; }            // loop: other
            return x;
        }
        """
        program = compile_source(source)
        convertible = convertible_branches(program)
        assert len(convertible) == 2
        loop_sites = {s.site_id for s in program.sites if s.kind == "loop"}
        assert not (convertible & loop_sites)

    def test_workload_programs_analyzable(self):
        for workload in all_workloads():
            program = workload.program()
            regions = analyze_program(program)
            assert set(regions) == {s.site_id for s in program.sites}
            # Every workload has at least one if-convertible branch.
            shapes = {r.shape for r in regions.values()}
            assert shapes & {"hammock", "diamond"}, workload.name
