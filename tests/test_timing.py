"""Tests for the execution-cost simulator and the what-if study."""

import numpy as np
import pytest

from repro.core.predication import AdvisorDecision, PredicationCosts
from repro.core.timing import WishBranchState, evaluate_policy
from repro.predictors.simulate import SimulationResult
from repro.trace.trace import BranchTrace


def make_run(outcomes, correct, site=0, num_sites=1):
    """One-site trace + matching simulation with chosen correctness."""
    outcomes = np.array(outcomes, dtype=np.uint8)
    correct = np.array(correct, dtype=np.uint8)
    trace = BranchTrace(
        program="t", input_name="i", num_sites=num_sites,
        sites=np.full(len(outcomes), site, dtype=np.int32),
        outcomes=outcomes,
    )
    sim = SimulationResult(
        predictor_name="fixed",
        num_sites=num_sites,
        correct=correct,
        exec_counts=np.bincount(trace.sites, minlength=num_sites).astype(np.int64),
        correct_counts=np.bincount(trace.sites, weights=correct, minlength=num_sites).astype(np.int64),
    )
    return trace, sim


COSTS = PredicationCosts()  # penalty 30, T=N=3, pred=5


class TestBranchMode:
    def test_all_correct_costs_path_cycles(self):
        trace, sim = make_run([1, 0, 1], [1, 1, 1])
        report = evaluate_policy(trace, sim, {}, COSTS)
        assert report.total_cycles == pytest.approx(9.0)
        assert report.per_site[0].flushes == 0

    def test_misprediction_adds_penalty(self):
        trace, sim = make_run([1, 1], [1, 0])
        report = evaluate_policy(trace, sim, {}, COSTS)
        assert report.total_cycles == pytest.approx(3 + 3 + 30)
        assert report.per_site[0].flushes == 1

    def test_taken_vs_not_taken_costs(self):
        costs = PredicationCosts(exec_taken=2, exec_not_taken=7)
        trace, sim = make_run([1, 0], [1, 1])
        report = evaluate_policy(trace, sim, {}, costs)
        assert report.total_cycles == pytest.approx(9.0)


class TestPredicatedMode:
    def test_flat_cost_regardless_of_prediction(self):
        trace, sim = make_run([1, 0, 1, 0], [0, 0, 0, 0])
        decisions = {0: AdvisorDecision.PREDICATE}
        report = evaluate_policy(trace, sim, decisions, COSTS)
        assert report.total_cycles == pytest.approx(4 * 5)
        assert report.per_site[0].flushes == 0
        assert report.per_site[0].predicated_runs == 4

    def test_predication_wins_for_hopeless_branch(self):
        outcomes = [1, 0] * 50
        correct = [0] * 100  # Always mispredicted.
        trace, sim = make_run(outcomes, correct)
        branchy = evaluate_policy(trace, sim, {}, COSTS)
        predicated = evaluate_policy(trace, sim, {0: AdvisorDecision.PREDICATE}, COSTS)
        assert predicated.total_cycles < branchy.total_cycles

    def test_branch_wins_for_easy_branch(self):
        trace, sim = make_run([1] * 100, [1] * 100)
        branchy = evaluate_policy(trace, sim, {}, COSTS)
        predicated = evaluate_policy(trace, sim, {0: AdvisorDecision.PREDICATE}, COSTS)
        assert branchy.total_cycles < predicated.total_cycles


class TestWishBranch:
    def test_state_confidence_saturation(self):
        state = WishBranchState(threshold=4, max_confidence=7)
        assert not state.use_predicated()
        for _ in range(3):
            state.update(0)
        assert state.confidence == 0
        assert state.use_predicated()
        for _ in range(20):
            state.update(1)
        assert state.confidence == 7

    def test_wish_adapts_to_hopeless_phase(self):
        # Phase 1 predictable, phase 2 hopeless: wish should approach
        # branch cost in phase 1 and predicated cost in phase 2.
        outcomes = [1] * 200 + [1, 0] * 100
        correct = [1] * 200 + [0] * 200
        trace, sim = make_run(outcomes, correct)
        wish = evaluate_policy(trace, sim, {0: AdvisorDecision.WISH_BRANCH}, COSTS)
        branchy = evaluate_policy(trace, sim, {}, COSTS)
        predicated = evaluate_policy(trace, sim, {0: AdvisorDecision.PREDICATE}, COSTS)
        assert wish.total_cycles < branchy.total_cycles
        # And it shouldn't be much worse than always-predicated here
        # (phase 1 correctness makes wish strictly better in that phase).
        assert wish.total_cycles < predicated.total_cycles + 200

    def test_wish_overhead_charged(self):
        trace, sim = make_run([1] * 10, [1] * 10)
        no_overhead = evaluate_policy(trace, sim, {0: AdvisorDecision.WISH_BRANCH},
                                      COSTS, wish_overhead=0.0)
        with_overhead = evaluate_policy(trace, sim, {0: AdvisorDecision.WISH_BRANCH},
                                        COSTS, wish_overhead=1.0)
        assert with_overhead.total_cycles == pytest.approx(no_overhead.total_cycles + 10)


class TestReportShape:
    def test_per_site_partition(self):
        trace, sim = make_run([1, 0, 1, 1], [1, 0, 1, 1])
        report = evaluate_policy(trace, sim, {}, COSTS)
        assert report.total_branches == 4
        assert sum(s.executions for s in report.per_site.values()) == 4
        assert report.cycles_per_branch == pytest.approx(report.total_cycles / 4)

    def test_mismatched_simulation_rejected(self):
        trace, sim = make_run([1, 0], [1, 1])
        short_trace = trace.slice_view(0, 1)
        with pytest.raises(ValueError, match="match"):
            evaluate_policy(short_trace, sim, {}, COSTS)


class TestWhatIf:
    def test_whatif_end_to_end(self, tiny_runner):
        from repro.analysis.whatif import POLICIES, run_whatif

        result = run_whatif(tiny_runner, "vortexish")
        assert set(result.reports) == set(POLICIES)
        # Policies replay the same trace: branch counts agree.
        counts = {r.total_branches for r in result.reports.values()}
        assert len(counts) == 1
        # The oracle never loses to aggregate PGO by construction noise
        # margins (both use eq-3 decisions; the oracle sees the ref profile).
        assert result.cycles("oracle") <= result.cycles("aggregate") * 1.02

    def test_whatif_rows(self, tiny_runner):
        from repro.analysis.whatif import whatif_rows

        rows = whatif_rows(tiny_runner, ["vortexish"])
        assert rows[0]["all-branch"] == pytest.approx(1.0)
        for key in ("aggregate", "2d-aware", "oracle"):
            assert rows[0][key] > 0
