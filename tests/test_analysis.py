"""Tests for the analysis layer: table builders, time series, overhead."""

import math

import pytest

from repro.analysis.overhead import MODES, measure_overheads, run_mode
from repro.analysis.tables import (
    ACCURACY_BINS,
    fig2_rows,
    fig3_rows,
    fig10_rows,
    format_fraction,
    format_table,
    render_rows,
    table1_rows,
)
from repro.analysis.timeseries import (
    figure8_series,
    pick_exemplars,
    render_ascii_series,
    site_series,
)
from repro.core.profiler2d import ProfilerConfig, profile_trace
from repro.predictors import make_predictor, simulate
from repro.trace.synthetic import phased_trace
from repro.vm import Machine
from repro.workloads import get_workload


class TestFormatting:
    def test_format_fraction_nan(self):
        assert format_fraction(float("nan")) == "n/a"

    def test_format_fraction_value(self):
        assert format_fraction(0.876) == "0.88"

    def test_format_table_alignment(self):
        text = format_table(["a", "long"], [["1", "2"]], title="T")
        lines = text.splitlines()
        assert lines[0] == "T"
        assert "a" in lines[1] and "long" in lines[1]

    def test_render_rows_percent(self):
        rows = [{"w": "x", "v": 0.5}]
        text = render_rows(rows, percent_keys=("v",))
        assert "50.0%" in text

    def test_render_rows_empty(self):
        assert render_rows([], title="T") == "T"

    def test_accuracy_bins_cover_unit_interval(self):
        assert ACCURACY_BINS[0][0] == 0.0
        for (lo, hi, _), (lo2, _hi2, _) in zip(ACCURACY_BINS, ACCURACY_BINS[1:]):
            assert hi == lo2
        assert ACCURACY_BINS[-1][1] > 1.0


class TestFig2:
    def test_crossover_visible_in_rows(self):
        rows = fig2_rows(points=21)
        below = [r for r in rows if r["misp_rate"] < 0.06]
        above = [r for r in rows if r["misp_rate"] > 0.08]
        assert all(r["branch_cost"] < r["predicated_cost"] for r in below)
        assert all(r["branch_cost"] > r["predicated_cost"] for r in above)


class TestRowBuilders:
    def test_table1_rows(self, tiny_runner):
        rows = table1_rows(tiny_runner)
        assert len(rows) == 12
        for row in rows:
            assert 0.0 <= row["train"] <= 1.0
            assert 0.0 <= row["ref"] <= 1.0

    def test_fig3_rows_sorted(self, tiny_runner):
        rows = fig3_rows(tiny_runner)
        dynamics = [r["dynamic"] for r in rows]
        assert dynamics == sorted(dynamics, reverse=True)

    def test_fig10_rows_have_metrics(self, tiny_runner):
        rows = fig10_rows(tiny_runner)
        assert len(rows) == 12
        for row in rows:
            for key in ("COV-dep", "ACC-dep", "COV-indep", "ACC-indep"):
                value = row[key]
                assert math.isnan(value) or 0.0 <= value <= 1.0


class TestTimeseries:
    def test_pick_exemplars_on_synthetic(self):
        trace, _stationary, phased = phased_trace(6, 2, 20_000, seed=41)
        sim = simulate(make_predictor("bimodal"), trace)
        report = profile_trace(trace, simulation=sim,
                               config=ProfilerConfig(keep_series=True))
        varying, flat = pick_exemplars(report)
        assert varying in phased
        assert report.stats[flat].std <= report.stats[varying].std

    def test_site_series_extraction(self):
        trace, _s, _p = phased_trace(4, 2, 10_000, seed=42)
        sim = simulate(make_predictor("bimodal"), trace)
        report = profile_trace(trace, simulation=sim,
                               config=ProfilerConfig(keep_series=True))
        series = site_series(report, 0, label="x")
        assert series.label == "x"
        assert len(series.points) == len(series.accuracies)

    def test_figure8_series_end_to_end(self, tiny_runner):
        varying, flat, overall = figure8_series(tiny_runner, "gapish", slices=20)
        assert varying.points and flat.points and overall
        assert varying.std >= flat.std

    def test_ascii_render(self):
        trace, _s, _p = phased_trace(2, 1, 5_000, seed=43)
        sim = simulate(make_predictor("bimodal"), trace)
        report = profile_trace(trace, simulation=sim,
                               config=ProfilerConfig(keep_series=True))
        text = render_ascii_series(site_series(report, 0))
        assert "mean=" in text and "|" in text


class TestOverhead:
    def test_all_modes_run(self):
        wl = get_workload("mcfish")
        machine = Machine(wl.program())
        input_set = wl.make_input("train", 0.02)
        for mode in MODES:
            run_mode(machine, input_set, mode)

    def test_unknown_mode_rejected(self):
        wl = get_workload("mcfish")
        machine = Machine(wl.program())
        with pytest.raises(ValueError, match="unknown overhead mode"):
            run_mode(machine, wl.make_input("train", 0.02), "turbo")

    def test_measure_overheads_normalized(self):
        rows = measure_overheads("mcfish", scale=0.02)
        by_mode = {r.mode: r for r in rows}
        assert by_mode["binary"].normalized == pytest.approx(1.0)
        # Instrumented modes cannot be faster than the bare binary by much
        # (tolerance for timing noise at tiny scale).
        assert by_mode["2d+gshare"].normalized > 0.8

    def test_tools_produce_results(self):
        wl = get_workload("vortexish")
        machine = Machine(wl.program())
        input_set = wl.make_input("train", 0.02)
        edge_tool = run_mode(machine, input_set, "edge")
        assert sum(edge_tool.exec_counts) > 0
        predictor_tool = run_mode(machine, input_set, "gshare")
        assert predictor_tool.overall_accuracy > 0.0
        online = run_mode(machine, input_set, "2d+gshare", slice_size=500)
        report = online.finish()
        assert report.profiled_sites()
