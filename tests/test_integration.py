"""Integration tests: the full pipeline at small scale.

These check the *science* end to end on real workloads: 2D-profiling with
a single (train) input predicts input-dependence with better-than-chance
accuracy, input-independent branches are identified reliably, the gapish
Figure 6 branch is both truly input-dependent and detected, and the
instrumentation overhead ordering of Figure 16 holds.
"""

import math

import pytest

from repro.core.experiment import ExperimentRunner, SuiteConfig
from repro.core.metrics import evaluate_detection
from repro.core.profiler2d import ProfilerConfig


@pytest.fixture(scope="module")
def runner(tmp_path_factory):
    return ExperimentRunner(
        SuiteConfig(scale=0.4, cache_dir=tmp_path_factory.mktemp("int-cache"))
    )


# Workloads whose train/ref pair flips plenty of branches at this scale.
DETECTION_WORKLOADS = ("gzipish", "gapish", "vortexish")


class TestDetectionQuality:
    @pytest.mark.parametrize("workload", DETECTION_WORKLOADS)
    def test_better_than_chance(self, runner, workload):
        """ACC-dep must beat the base rate of guessing 'dependent'."""
        report = runner.profile_2d(workload)
        truth = runner.ground_truth(workload)
        metrics = evaluate_detection(report.input_dependent_sites(), truth)
        base_rate = truth.dependent_fraction
        if metrics.identified_dep:
            assert metrics.acc_dep >= base_rate * 0.8, (
                f"{workload}: ACC-dep {metrics.acc_dep:.2f} vs base {base_rate:.2f}"
            )

    @pytest.mark.parametrize("workload", DETECTION_WORKLOADS)
    def test_independent_branches_identified(self, runner, workload):
        metrics = runner.evaluate(workload)
        assert metrics.cov_indep > 0.4 or math.isnan(metrics.cov_indep)
        assert metrics.acc_indep > 0.5 or math.isnan(metrics.acc_indep)

    def test_stable_workloads_have_few_dependents(self, runner):
        """eonish imitates eon: almost no input-dependent branches."""
        truth = runner.ground_truth("eonish")
        assert truth.dependent_fraction < 0.25


class TestGapFigure6Story:
    def test_type_check_branch_truly_input_dependent(self, runner):
        """The sum_handles type-dispatch branch flips accuracy train->ref."""
        runner.trace("gapish", "train")  # ensure trace exists
        from repro.workloads import get_workload

        prog = get_workload("gapish").program()
        dispatch_sites = {s.site_id for s in prog.sites_in_function("sum_handles")}
        truth = runner.ground_truth("gapish")
        assert dispatch_sites & truth.dependent, (
            "no sum_handles branch is input-dependent between train and ref"
        )

    def test_2d_profiling_detects_a_dispatch_branch(self, runner):
        from repro.workloads import get_workload

        prog = get_workload("gapish").program()
        dispatch_sites = {s.site_id for s in prog.sites_in_function("sum_handles")}
        report = runner.profile_2d("gapish")
        truth = runner.ground_truth("gapish")
        target = dispatch_sites & truth.dependent
        assert report.input_dependent_sites() & target


class TestCrossPredictor:
    def test_gshare_profiler_perceptron_target(self, runner):
        """Section 5.3: profiling predictor != target predictor still works."""
        metrics = runner.evaluate(
            "vortexish", profiler_predictor="gshare", target_predictor="perceptron"
        )
        # The mechanism should still separate the classes better than chance.
        truth = runner.ground_truth("vortexish", "perceptron")
        if metrics.identified_dep:
            assert metrics.acc_dep >= truth.dependent_fraction * 0.6


class TestMoreInputSets:
    def test_dependent_set_grows_with_inputs(self, runner):
        sizes = []
        for others in runner.incremental_input_sets("gapish")[:3]:
            truth = runner.ground_truth("gapish", others=others)
            sizes.append(len(truth.dependent))
        assert sizes == sorted(sizes)

    def test_acc_dep_does_not_collapse_with_more_inputs(self, runner):
        base = runner.evaluate("gapish")
        extended = runner.evaluate(
            "gapish", others=runner.incremental_input_sets("gapish")[2]
        )
        if not math.isnan(base.acc_dep) and not math.isnan(extended.acc_dep):
            assert extended.acc_dep >= base.acc_dep - 0.15


class TestProfilerConfigEffects:
    def test_slice_count_insensitivity(self, runner):
        """Detection should be broadly stable across reasonable slice sizes."""
        runner.trace("vortexish", "train")
        results = []
        for target in (40, 80):
            report = runner.profile_2d(
                "vortexish", config=ProfilerConfig(target_slices=target)
            )
            results.append(report.input_dependent_sites())
        overlap = len(results[0] & results[1])
        union = len(results[0] | results[1]) or 1
        assert overlap / union > 0.3
