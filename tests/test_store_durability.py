"""Crash-safety tests for the profile warehouse.

Mirrors ``tests/test_cachefs.py``: the warehouse inherits the cache's
discipline — atomic publication, corruption-as-miss — and adds a two-phase
commit (segment files first, manifest second).  Covered here:

* truncated / garbage segment files behind a *committed* run surface as
  :class:`~repro.errors.StoreError` on open and as a miss in ``find``,
  never as wrong data;
* a real ``SIGKILL`` landing exactly between segment publication and the
  manifest commit leaves the store openable with the interrupted run
  absent, its segment unreferenced garbage that ``gc`` sweeps, and a
  retried ingest succeeding;
* external damage to the manifest itself raises loudly instead of being
  silently treated as an empty store (which would orphan data).
"""

from __future__ import annotations

import os
import signal
import subprocess
import sys
from pathlib import Path

import pytest

from repro.core.experiment import ExperimentRunner, SuiteConfig
from repro.core.profiler2d import ProfilerConfig
from repro.errors import StoreError
from repro.store import ProfileWarehouse

SCALE = 0.05
WORKLOAD = "gzipish"
KEEP = ProfilerConfig(keep_series=True)


@pytest.fixture(scope="module")
def runner(tmp_path_factory):
    cache = tmp_path_factory.mktemp("cache")
    return ExperimentRunner(SuiteConfig(scale=SCALE, cache_dir=cache))


@pytest.fixture()
def stocked(tmp_path, runner):
    warehouse = ProfileWarehouse(tmp_path / "wh")
    report = runner.profile_2d(WORKLOAD, "gshare", config=KEEP)
    sim = runner.simulation(WORKLOAD, "train", "gshare")
    run_id = warehouse.ingest(report, workload=WORKLOAD, input_name="train",
                              predictor="gshare", scale=SCALE, sim=sim)
    return warehouse, run_id, report, sim


def _segment_file(warehouse: ProfileWarehouse, run_id: str, key: str) -> Path:
    record = warehouse.manifest().runs[run_id]
    return warehouse.segments_root / record.segment / f"{key}.npy"


# ----------------------------------------------------------------------
# Damaged segment files behind a committed run
# ----------------------------------------------------------------------


class TestSegmentCorruption:
    @pytest.mark.parametrize("key", ["acc", "indptr", "exec"])
    def test_truncated_segment_file_fails_validation(self, stocked, key):
        warehouse, run_id, _report, _sim = stocked
        path = _segment_file(warehouse, run_id, key)
        path.write_bytes(path.read_bytes()[: path.stat().st_size // 2])
        with pytest.raises(StoreError, match="bytes"):
            warehouse.open_run(run_id)
        assert warehouse.check() == [run_id]

    def test_missing_segment_file_fails_validation(self, stocked):
        warehouse, run_id, _report, _sim = stocked
        _segment_file(warehouse, run_id, "slice").unlink()
        with pytest.raises(StoreError, match="missing"):
            warehouse.open_run(run_id)

    def test_garbage_segment_file_fails_on_read(self, stocked):
        """Same-size garbage passes the cheap size check but is refused at
        map time — the query layer never trusts undecodable bytes."""
        warehouse, run_id, _report, _sim = stocked
        path = _segment_file(warehouse, run_id, "acc")
        path.write_bytes(b"\xff" * path.stat().st_size)
        run = warehouse.open_run(run_id)  # the cheap size check still passes
        site = min(run.profiled_sites())  # reads only the (intact) index
        with pytest.raises(StoreError, match="cannot map|dtype"):
            run.site_series(site)

    def test_find_treats_corrupt_run_as_miss(self, stocked, caplog):
        warehouse, run_id, report, sim = stocked
        path = _segment_file(warehouse, run_id, "acc")
        path.write_bytes(path.read_bytes()[:8])
        with caplog.at_level("WARNING", logger="repro.store.warehouse"):
            assert warehouse.find(WORKLOAD, "train", "gshare") is None
        assert any("unreadable" in rec.message for rec in caplog.records)
        # Re-ingest goes through (dedupe misses the corrupt copy) and the
        # store is healthy again under the same key.
        fresh = warehouse.ingest(report, workload=WORKLOAD, input_name="train",
                                 predictor="gshare", scale=SCALE, sim=sim)
        assert fresh != run_id
        found = warehouse.find(WORKLOAD, "train", "gshare")
        assert found is not None and found.run_id == fresh

    def test_corrupt_manifest_raises_not_empty(self, stocked):
        warehouse, _run_id, _report, _sim = stocked
        warehouse.manifest_path.write_text("{not json")
        with pytest.raises(StoreError, match="corrupt manifest"):
            ProfileWarehouse(warehouse.root).runs()


# ----------------------------------------------------------------------
# SIGKILL between segment write and manifest commit
# ----------------------------------------------------------------------

# The child commits one run normally, then re-runs ingest with the
# manifest writer replaced by SIGKILL-to-self: the second run's segment is
# fully published but its manifest commit never lands — exactly the
# window the two-phase protocol must make harmless.
_KILL_SCRIPT = """
import os, signal, sys
from pathlib import Path
import repro.store.manifest as manifest_mod
from repro.core.experiment import ExperimentRunner, SuiteConfig
from repro.core.profiler2d import ProfilerConfig
from repro.store import ProfileWarehouse

cache_dir, store_dir, scale = Path(sys.argv[1]), sys.argv[2], float(sys.argv[3])
runner = ExperimentRunner(SuiteConfig(scale=scale, cache_dir=cache_dir))
config = ProfilerConfig(keep_series=True)
warehouse = ProfileWarehouse(store_dir)

report = runner.profile_2d("gzipish", "gshare", config=config)
sim = runner.simulation("gzipish", "train", "gshare")
warehouse.ingest(report, workload="gzipish", input_name="train",
                 predictor="gshare", scale=scale, sim=sim)
print("committed", flush=True)

ref = runner.profile_2d("gzipish", "gshare", input_name="ref", config=config)
ref_sim = runner.simulation("gzipish", "ref", "gshare")

def die(path, manifest):
    os.kill(os.getpid(), signal.SIGKILL)

manifest_mod.save_manifest = die
warehouse.ingest(ref, workload="gzipish", input_name="ref",
                 predictor="gshare", scale=scale, sim=ref_sim)
raise SystemExit("unreachable: the kill must land before the commit")
"""


@pytest.mark.slow
def test_sigkill_between_segment_write_and_commit(tmp_path, runner):
    store_dir = tmp_path / "wh"
    proc = subprocess.Popen(
        [sys.executable, "-c", _KILL_SCRIPT,
         str(runner.config.cache_dir), str(store_dir), str(SCALE)],
        stdout=subprocess.PIPE,
        env=dict(os.environ, PYTHONPATH="src"),
        cwd=Path(__file__).resolve().parents[1],
    )
    assert proc.stdout is not None
    assert proc.stdout.readline().strip() == b"committed"
    assert proc.wait(timeout=120) == -signal.SIGKILL

    # The store opens cleanly; only the first run is visible and readable.
    warehouse = ProfileWarehouse(store_dir, create=False)
    records = warehouse.runs()
    assert [(rec.workload, rec.input) for rec in records] == [("gzipish", "train")]
    assert warehouse.check() == []
    run = warehouse.open_run(records[0].run_id)
    assert run.profiled_sites()

    # The interrupted run's segment was fully written but never committed:
    # it is unreferenced garbage, and gc sweeps exactly it.
    live = {rec.segment for rec in records}
    on_disk = {p.name for p in warehouse.segments_root.iterdir() if p.is_dir()}
    assert len(on_disk - live) == 1
    stats = warehouse.gc()
    assert stats.segments_removed == 1
    on_disk_after = {p.name for p in warehouse.segments_root.iterdir() if p.is_dir()}
    assert on_disk_after == live

    # Retrying the interrupted ingest succeeds from cached artifacts.
    report = runner.profile_2d(WORKLOAD, "gshare", input_name="ref", config=KEEP)
    sim = runner.simulation(WORKLOAD, "ref", "gshare")
    run_id = warehouse.ingest(report, workload=WORKLOAD, input_name="ref",
                              predictor="gshare", scale=SCALE, sim=sim)
    assert {rec.input for rec in warehouse.runs()} == {"train", "ref"}
    assert warehouse.open_run(run_id).counts()
