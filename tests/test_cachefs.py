"""Crash-safety tests for the shared on-disk cache.

Covers the three :mod:`repro.cachefs` guarantees — atomic publication,
per-artifact locking, corruption-as-miss — both at the primitive level and
end to end through :class:`ExperimentRunner` (truncated/garbage ``.npz``
entries must be recomputed and overwritten, never raised), plus a real
``SIGKILL``-mid-run test asserting every *published* artifact stays
loadable.
"""

from __future__ import annotations

import os
import signal
import subprocess
import sys
import time
from pathlib import Path

import numpy as np
import pytest

from repro import cachefs
from repro.cachefs import (
    artifact_lock,
    atomic_savez,
    lock_path_for,
    sweep_tmp_files,
)
from repro.core.experiment import ExperimentRunner, SuiteConfig
from repro.trace.trace import BranchTrace
from repro.errors import TraceError

SCALE = 0.05


def _runner(cache_dir) -> ExperimentRunner:
    return ExperimentRunner(SuiteConfig(scale=SCALE, cache_dir=cache_dir))


# ----------------------------------------------------------------------
# Primitives
# ----------------------------------------------------------------------


def test_atomic_savez_roundtrip(tmp_path):
    path = tmp_path / "deep" / "artifact.npz"
    atomic_savez(path, values=np.arange(5))
    with np.load(path) as data:
        np.testing.assert_array_equal(data["values"], np.arange(5))
    assert list(tmp_path.rglob(f"*{cachefs.TMP_SUFFIX}")) == []


def test_atomic_savez_overwrites_existing(tmp_path):
    path = tmp_path / "artifact.npz"
    atomic_savez(path, values=np.zeros(3))
    atomic_savez(path, values=np.ones(3))
    with np.load(path) as data:
        np.testing.assert_array_equal(data["values"], np.ones(3))


def test_atomic_savez_crash_before_publish_leaves_nothing(tmp_path, monkeypatch):
    """A crash at the publication instant must leave no artifact and no
    stray tmp file (the failure path cleans up after itself)."""
    path = tmp_path / "artifact.npz"

    def exploding_replace(src, dst):
        raise OSError("simulated crash at publication")

    monkeypatch.setattr(cachefs.os, "replace", exploding_replace)
    with pytest.raises(OSError, match="simulated crash"):
        atomic_savez(path, values=np.arange(3))
    monkeypatch.undo()
    assert not path.exists()
    assert list(tmp_path.glob(f"*{cachefs.TMP_SUFFIX}")) == []
    # The cache is fully functional afterwards.
    atomic_savez(path, values=np.arange(3))
    with np.load(path) as data:
        np.testing.assert_array_equal(data["values"], np.arange(3))


def test_lock_path_naming(tmp_path):
    assert lock_path_for(tmp_path / "a.npz") == tmp_path / ("a.npz" + cachefs.LOCK_SUFFIX)


def test_artifact_lock_excludes_other_processes(tmp_path):
    """While we hold an artifact's lock, another process cannot take it."""
    pytest.importorskip("fcntl")
    target = tmp_path / "artifact.npz"
    probe = (
        "import fcntl, os, sys\n"
        "fd = os.open(sys.argv[1], os.O_RDWR | os.O_CREAT)\n"
        "try:\n"
        "    fcntl.flock(fd, fcntl.LOCK_EX | fcntl.LOCK_NB)\n"
        "except BlockingIOError:\n"
        "    sys.exit(42)\n"
        "sys.exit(0)\n"
    )

    def probe_lock() -> int:
        return subprocess.run(
            [sys.executable, "-c", probe, str(lock_path_for(target))],
        ).returncode

    with artifact_lock(target):
        assert probe_lock() == 42, "lock should be held"
    assert probe_lock() == 0, "lock should be free after the context exits"
    # Lock files persist by design (unlinking would break mutual exclusion).
    assert lock_path_for(target).exists()


def test_sweep_tmp_files(tmp_path):
    (tmp_path / "a.npz.xyz.tmp").write_bytes(b"partial")
    (tmp_path / "b.npz.abc.tmp").write_bytes(b"partial")
    (tmp_path / "keep.npz").write_bytes(b"published")
    assert sweep_tmp_files(tmp_path) == 2
    assert sorted(p.name for p in tmp_path.glob("*")) == ["keep.npz"]
    assert sweep_tmp_files(tmp_path / "missing-dir") == 0


# ----------------------------------------------------------------------
# Corruption is a cache miss (end to end through the runner)
# ----------------------------------------------------------------------


def _corrupt_by_truncation(path: Path) -> None:
    data = path.read_bytes()
    path.write_bytes(data[: len(data) // 2])


def test_truncated_sim_is_recomputed(tmp_path, caplog):
    first = _runner(tmp_path)
    sim = first.simulation("mcfish", "train", "gshare")
    path = first._sim_path("mcfish", "train", "gshare")
    _corrupt_by_truncation(path)

    fresh = _runner(tmp_path)
    with caplog.at_level("WARNING", logger="repro.core.experiment"):
        recomputed = fresh.simulation("mcfish", "train", "gshare")
    assert any("corrupt cache entry" in rec.message for rec in caplog.records)
    np.testing.assert_array_equal(recomputed.correct, sim.correct)
    np.testing.assert_array_equal(recomputed.exec_counts, sim.exec_counts)
    # The entry was atomically overwritten and is loadable again.
    reloaded = ExperimentRunner._load_sim(path)
    np.testing.assert_array_equal(reloaded.correct, sim.correct)


def test_truncated_trace_is_recomputed(tmp_path):
    first = _runner(tmp_path)
    trace = first.trace("mcfish", "train")
    path = first._trace_path("mcfish", "train")
    _corrupt_by_truncation(path)
    with pytest.raises(TraceError):
        BranchTrace.load(path)

    fresh = _runner(tmp_path)
    recomputed = fresh.trace("mcfish", "train")
    np.testing.assert_array_equal(recomputed.sites, trace.sites)
    np.testing.assert_array_equal(recomputed.outcomes, trace.outcomes)
    np.testing.assert_array_equal(BranchTrace.load(path).sites, trace.sites)


def test_garbage_and_empty_cache_entries_are_recomputed(tmp_path):
    first = _runner(tmp_path)
    sim = first.simulation("mcfish", "train", "gshare")
    path = first._sim_path("mcfish", "train", "gshare")

    for payload in (b"", b"this is not a zip file at all"):
        path.write_bytes(payload)
        fresh = _runner(tmp_path)
        recomputed = fresh.simulation("mcfish", "train", "gshare")
        np.testing.assert_array_equal(recomputed.correct, sim.correct)


def test_wrong_schema_cache_entry_is_recomputed(tmp_path):
    """A valid .npz with the wrong arrays (e.g. another tool's file) is a
    miss, not a crash."""
    first = _runner(tmp_path)
    sim = first.simulation("mcfish", "train", "gshare")
    path = first._sim_path("mcfish", "train", "gshare")
    np.savez_compressed(path, unrelated=np.arange(3))

    fresh = _runner(tmp_path)
    recomputed = fresh.simulation("mcfish", "train", "gshare")
    np.testing.assert_array_equal(recomputed.correct, sim.correct)


# ----------------------------------------------------------------------
# Kill -9 mid-run
# ----------------------------------------------------------------------

_KILL_SCRIPT = """
import sys
from repro.core.experiment import ExperimentRunner, SuiteConfig

runner = ExperimentRunner(SuiteConfig(scale=float(sys.argv[2]), cache_dir=sys.argv[1]))
print("started", flush=True)
for workload in ("gzipish", "gapish", "mcfish", "vortexish"):
    for input_name in ("train", "ref"):
        runner.simulation(workload, input_name, "gshare")
"""


@pytest.mark.slow
def test_sigkill_mid_run_leaves_no_corrupt_entries(tmp_path):
    """SIGKILL a cache-writing process at an arbitrary instant: every
    published ``.npz`` must still load, and a fresh run must complete."""
    env = dict(os.environ, PYTHONPATH="src")
    proc = subprocess.Popen(
        [sys.executable, "-c", _KILL_SCRIPT, str(tmp_path), str(SCALE)],
        stdout=subprocess.PIPE,
        env=env,
        cwd=Path(__file__).resolve().parents[1],
    )
    assert proc.stdout is not None
    proc.stdout.readline()  # wait for imports to finish, then kill mid-work
    time.sleep(0.35)
    proc.send_signal(signal.SIGKILL)
    proc.wait(timeout=30)

    published = list(tmp_path.rglob("*.npz"))
    for path in published:
        if "traces" in path.parts:
            BranchTrace.load(path)  # must not raise
        else:
            ExperimentRunner._load_sim(path)  # must not raise

    # Recovery: a fresh runner finishes the interrupted grid.
    runner = _runner(tmp_path)
    sweep_tmp_files(tmp_path / "traces")
    sweep_tmp_files(tmp_path / "sims")
    for workload in ("gzipish", "mcfish"):
        sim = runner.simulation(workload, "train", "gshare")
        assert sim.num_branches > 0
