"""Unit tests for the Minic parser."""

import pytest

from repro.errors import ParseError
from repro.lang import ast
from repro.lang.lexer import tokenize
from repro.lang.parser import parse


def parse_source(source):
    return parse(tokenize(source))


def parse_expr(expr_text):
    """Parse an expression via a return statement wrapper."""
    program = parse_source(f"func main() {{ return {expr_text}; }}")
    stmt = program.functions[0].body.body[0]
    assert isinstance(stmt, ast.Return)
    return stmt.value


class TestTopLevel:
    def test_empty_program(self):
        program = parse_source("")
        assert program.functions == [] and program.globals == []

    def test_global_scalar(self):
        program = parse_source("global x = 5;")
        decl = program.globals[0]
        assert decl.name == "x"
        assert isinstance(decl.init, ast.IntLiteral) and decl.init.value == 5

    def test_global_without_init(self):
        decl = parse_source("global x;").globals[0]
        assert decl.init is None and decl.array_size is None

    def test_global_array(self):
        decl = parse_source("global table[64];").globals[0]
        assert isinstance(decl.array_size, ast.IntLiteral)
        assert decl.array_size.value == 64

    def test_function_with_params(self):
        func = parse_source("func f(a, b, c) { }").functions[0]
        assert func.params == ["a", "b", "c"]

    def test_junk_at_top_level(self):
        with pytest.raises(ParseError, match="top level"):
            parse_source("x = 3;")


class TestStatements:
    def test_var_decl_with_init(self):
        func = parse_source("func main() { var x = 1 + 2; }").functions[0]
        decl = func.body.body[0]
        assert isinstance(decl, ast.VarDecl)
        assert isinstance(decl.init, ast.Binary)

    def test_local_array_decl(self):
        decl = parse_source("func main() { var buf[10]; }").functions[0].body.body[0]
        assert decl.array_size.value == 10

    def test_plain_assignment(self):
        stmt = parse_source("func main() { var x = 0; x = 5; }").functions[0].body.body[1]
        assert isinstance(stmt, ast.Assign) and stmt.op == "="

    @pytest.mark.parametrize("text,op", [
        ("x += 1;", "+"), ("x -= 1;", "-"), ("x *= 2;", "*"), ("x /= 2;", "/"),
        ("x %= 3;", "%"), ("x &= 7;", "&"), ("x |= 1;", "|"), ("x ^= 1;", "^"),
        ("x <<= 1;", "<<"), ("x >>= 1;", ">>"),
    ])
    def test_compound_assignment(self, text, op):
        stmt = parse_source(f"func main() {{ var x = 0; {text} }}").functions[0].body.body[1]
        assert isinstance(stmt, ast.Assign) and stmt.op == op

    def test_index_assignment(self):
        stmt = parse_source("func main() { var a[4]; a[2] = 9; }").functions[0].body.body[1]
        assert isinstance(stmt.target, ast.Index)

    def test_assignment_to_literal_rejected(self):
        with pytest.raises(ParseError, match="assignment target"):
            parse_source("func main() { 3 = 4; }")

    def test_assignment_to_call_rejected(self):
        with pytest.raises(ParseError, match="assignment target"):
            parse_source("func f() {} func main() { f() = 4; }")

    def test_if_else(self):
        stmt = parse_source("func main() { if (1) { } else { } }").functions[0].body.body[0]
        assert isinstance(stmt, ast.If) and stmt.else_body is not None

    def test_dangling_else_binds_to_nearest_if(self):
        source = "func main() { if (1) if (2) return 1; else return 2; }"
        outer = parse_source(source).functions[0].body.body[0]
        assert outer.else_body is None
        inner = outer.then_body
        assert isinstance(inner, ast.If) and inner.else_body is not None

    def test_while(self):
        stmt = parse_source("func main() { while (1) { break; } }").functions[0].body.body[0]
        assert isinstance(stmt, ast.While)

    def test_do_while(self):
        stmt = parse_source("func main() { do { } while (0); }").functions[0].body.body[0]
        assert isinstance(stmt, ast.DoWhile)

    def test_for_full(self):
        source = "func main() { for (var i = 0; i < 10; i += 1) { } }"
        stmt = parse_source(source).functions[0].body.body[0]
        assert isinstance(stmt, ast.For)
        assert isinstance(stmt.init, ast.VarDecl)
        assert stmt.cond is not None and stmt.step is not None

    def test_for_empty_clauses(self):
        stmt = parse_source("func main() { for (;;) { break; } }").functions[0].body.body[0]
        assert stmt.init is None and stmt.cond is None and stmt.step is None

    def test_for_with_assignment_init(self):
        source = "func main() { var i; for (i = 0; i < 3; i += 1) { } }"
        stmt = parse_source(source).functions[0].body.body[1]
        assert isinstance(stmt.init, ast.Assign)

    def test_return_without_value(self):
        stmt = parse_source("func main() { return; }").functions[0].body.body[0]
        assert stmt.value is None

    def test_expression_statement(self):
        stmt = parse_source("func f() {} func main() { f(); }").functions[1].body.body[0]
        assert isinstance(stmt, ast.ExprStmt)

    def test_unterminated_block(self):
        with pytest.raises(ParseError, match="unterminated|expected"):
            parse_source("func main() { if (1) {")

    def test_missing_semicolon(self):
        with pytest.raises(ParseError, match="';'"):
            parse_source("func main() { var x = 1 }")


class TestExpressions:
    def test_precedence_mul_over_add(self):
        expr = parse_expr("1 + 2 * 3")
        assert expr.op == "+"
        assert expr.right.op == "*"

    def test_precedence_shift_below_add(self):
        expr = parse_expr("1 << 2 + 3")
        assert expr.op == "<<"
        assert expr.right.op == "+"

    def test_precedence_compare_below_shift(self):
        expr = parse_expr("1 < 2 << 3")
        assert expr.op == "<"

    def test_precedence_bitand_below_equality(self):
        # C-like: == binds tighter than &.
        expr = parse_expr("a & b == c")
        assert expr.op == "&"
        assert expr.right.op == "=="

    def test_precedence_logical_lowest(self):
        expr = parse_expr("a == 1 && b == 2 || c")
        assert isinstance(expr, ast.Logical) and expr.op == "||"
        assert expr.left.op == "&&"

    def test_left_associativity(self):
        expr = parse_expr("10 - 3 - 2")
        assert expr.op == "-"
        assert expr.left.op == "-"
        assert expr.right.value == 2

    def test_unary_binds_tighter_than_binary(self):
        expr = parse_expr("-a * b")
        assert expr.op == "*"
        assert isinstance(expr.left, ast.Unary)

    def test_double_negation(self):
        expr = parse_expr("!!a")
        assert isinstance(expr, ast.Unary) and isinstance(expr.operand, ast.Unary)

    def test_parentheses_override(self):
        expr = parse_expr("(1 + 2) * 3")
        assert expr.op == "*"
        assert expr.left.op == "+"

    def test_call_no_args(self):
        expr = parse_expr("f()")
        assert isinstance(expr, ast.Call) and expr.args == []

    def test_call_multiple_args(self):
        expr = parse_expr("f(1, x, g(2))")
        assert len(expr.args) == 3
        assert isinstance(expr.args[2], ast.Call)

    def test_chained_indexing(self):
        expr = parse_expr("a[b[0]]")
        assert isinstance(expr, ast.Index)
        assert isinstance(expr.index, ast.Index)

    def test_empty_expression_rejected(self):
        with pytest.raises(ParseError, match="expression"):
            parse_source("func main() { return ; ; }")

    def test_unbalanced_paren(self):
        with pytest.raises(ParseError):
            parse_expr("(1 + 2")
