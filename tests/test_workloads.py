"""Tests for the workload suite: every program compiles, runs at tiny
scale, is deterministic, and has the structural properties its SPEC
counterpart motivates.
"""

import pytest

from repro.errors import ExperimentError
from repro.trace import capture_trace
from repro.workloads import all_workloads, deep_workloads, get_workload, workload_names

TINY = 0.03


@pytest.fixture(scope="module")
def tiny_traces():
    """Train trace per workload at tiny scale (shared across tests)."""
    traces = {}
    for wl in all_workloads():
        traces[wl.name] = capture_trace(wl.program(), wl.make_input("train", TINY))
    return traces


class TestRegistry:
    def test_twelve_workloads(self):
        assert len(all_workloads()) == 12

    def test_expected_names(self):
        assert set(workload_names()) == {
            "bzipish", "gzipish", "twolfish", "gapish", "craftyish", "parserish",
            "mcfish", "gccish", "vprish", "vortexish", "perlish", "eonish",
        }

    def test_six_deep_workloads(self):
        deep = {w.name for w in deep_workloads()}
        assert deep == {"bzipish", "gzipish", "twolfish", "gapish", "craftyish", "gccish"}

    def test_unknown_workload(self):
        with pytest.raises(ExperimentError, match="unknown workload"):
            get_workload("specint")

    def test_every_workload_has_train_and_ref(self):
        for wl in all_workloads():
            assert "train" in wl.inputs and "ref" in wl.inputs

    def test_deep_workloads_have_ext_inputs(self):
        for wl in deep_workloads():
            assert len(wl.ext_names) >= 4

    def test_input_name_ordering(self):
        wl = get_workload("gzipish")
        names = wl.input_names
        assert names[0] == "train" and names[1] == "ref"
        assert names[2:] == sorted(names[2:], key=lambda n: int(n.split("-")[1]))

    def test_unknown_input_rejected(self):
        with pytest.raises(ExperimentError, match="no input"):
            get_workload("gzipish").make_input("nope")


class TestExecution:
    def test_all_train_inputs_run(self, tiny_traces):
        for name, trace in tiny_traces.items():
            assert len(trace) > 100, f"{name} produced too few branches"
            assert trace.instructions > len(trace)

    def test_program_compiled_once(self):
        wl = get_workload("mcfish")
        assert wl.program() is wl.program()

    def test_deterministic_inputs(self):
        wl = get_workload("gapish")
        a = wl.make_input("train", TINY)
        b = wl.make_input("train", TINY)
        assert a.data == b.data and a.args == b.args

    def test_deterministic_traces(self):
        wl = get_workload("vortexish")
        t1 = capture_trace(wl.program(), wl.make_input("train", TINY))
        t2 = capture_trace(wl.program(), wl.make_input("train", TINY))
        assert (t1.sites == t2.sites).all()
        assert (t1.outcomes == t2.outcomes).all()

    def test_inputs_differ_across_sets(self):
        wl = get_workload("bzipish")
        train = wl.make_input("train", TINY)
        ref = wl.make_input("ref", TINY)
        assert train.data != ref.data

    def test_scale_changes_size(self):
        wl = get_workload("parserish")
        small = wl.make_input("train", 0.02)
        large = wl.make_input("train", 0.2)
        assert len(large.data) > len(small.data)

    def test_all_ref_inputs_run(self):
        for wl in all_workloads():
            trace = capture_trace(wl.program(), wl.make_input("ref", TINY))
            assert len(trace) > 100

    def test_all_ext_inputs_run(self):
        for wl in deep_workloads():
            for ext in wl.ext_names:
                trace = capture_trace(wl.program(), wl.make_input(ext, TINY))
                assert len(trace) > 50, f"{wl.name}/{ext}"


class TestPaperIdioms:
    def test_gzipish_has_loop_exit_branch_in_longest_match(self):
        program = get_workload("gzipish").program()
        kinds = {s.kind for s in program.sites_in_function("longest_match")}
        assert "loop" in kinds  # Figure 7's do-while exit branch.

    def test_gapish_has_type_dispatch_branch(self):
        program = get_workload("gapish").program()
        assert program.sites_in_function("sum_handles")  # Figure 6's check.

    def test_gapish_type_mix_changes_outputs(self):
        wl = get_workload("gapish")
        machine_out = {}
        from repro.vm import Machine
        machine = Machine(wl.program())
        for input_name in ("train", "ref"):
            result = machine.run(wl.make_input(input_name, TINY))
            int_ops, big_ops, _checksum = result.output
            machine_out[input_name] = big_ops / max(1, int_ops + big_ops)
        # Ref has far more bignum activity than train (paper's Figure 6 story).
        assert machine_out["ref"] > machine_out["train"] + 0.1

    def test_gzipish_level_changes_chain_walk(self):
        # Same data, different pack level -> different dynamic branch counts.
        from repro.vm import InputSet, Machine
        wl = get_workload("gzipish")
        machine = Machine(wl.program())
        base = wl.make_input("train", TINY)
        low = machine.run(InputSet.make("t", data=base.data, args=[1]), mode="trace")
        high = machine.run(InputSet.make("t", data=base.data, args=[9]), mode="trace")
        assert len(high.packed_trace) > len(low.packed_trace)

    def test_static_branch_counts_reasonable(self):
        for wl in all_workloads():
            sites = wl.program().num_sites
            assert 10 <= sites <= 200, f"{wl.name}: {sites} static branches"
