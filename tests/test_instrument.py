"""Unit tests for the Pin-style instrumentation tools."""

import pytest

from repro.lang import compile_source
from repro.predictors import paper_gshare, make_predictor
from repro.vm import InputSet, Machine
from repro.vm.instrument import EdgeProfilerTool, NullTool, PredictorTool

BIASED_SOURCE = """
func main() {
    var taken = 0;
    var i;
    for (i = 0; i < 100; i += 1) {
        if (i % 10 != 0) { taken += 1; }   // 90% taken if-branch
    }
    return taken;
}
"""


@pytest.fixture(scope="module")
def biased_program():
    return compile_source(BIASED_SOURCE)


def run_with(program, tool):
    machine = Machine(program)
    result = machine.run(InputSet.make("t"), mode="callback", hook=tool.on_branch)
    return result


class TestNullTool:
    def test_callback_runs_to_completion(self, biased_program):
        result = run_with(biased_program, NullTool())
        assert result.return_value == 90


class TestEdgeProfiler:
    def test_counts_sum_to_branch_count(self, biased_program):
        tool = EdgeProfilerTool(biased_program.num_sites)
        result = run_with(biased_program, tool)
        assert sum(tool.exec_counts) == result.branches

    def test_bias_matches_source_semantics(self, biased_program):
        tool = EdgeProfilerTool(biased_program.num_sites)
        run_with(biased_program, tool)
        # Find the if-branch: executed 100 times.
        if_sites = [s for s, c in enumerate(tool.exec_counts) if c == 100]
        assert if_sites
        bias = tool.bias(if_sites[0])
        # The branch is either ~90% or ~10% taken depending on codegen
        # polarity; its bias must reflect the 90/10 split.
        assert bias == pytest.approx(0.9, abs=0.011) or bias == pytest.approx(0.1, abs=0.011)

    def test_biases_skips_unexecuted(self, biased_program):
        tool = EdgeProfilerTool(biased_program.num_sites + 5)
        run_with(biased_program, tool)
        assert all(tool.exec_counts[s] for s in tool.biases())

    def test_bias_of_unexecuted_site_is_zero(self):
        tool = EdgeProfilerTool(3)
        assert tool.bias(1) == 0.0


class TestPredictorTool:
    def test_overall_accuracy_in_range(self, biased_program):
        tool = PredictorTool(paper_gshare(), biased_program.num_sites)
        run_with(biased_program, tool)
        assert 0.0 < tool.overall_accuracy <= 1.0

    def test_correct_never_exceeds_executed(self, biased_program):
        tool = PredictorTool(make_predictor("bimodal"), biased_program.num_sites)
        run_with(biased_program, tool)
        for site, acc in tool.accuracies().items():
            assert 0.0 <= acc.accuracy <= 1.0
            assert acc.correct <= acc.executed

    def test_always_taken_accuracy_equals_bias(self, biased_program):
        edge = EdgeProfilerTool(biased_program.num_sites)
        run_with(biased_program, edge)
        tool = PredictorTool(make_predictor("always-taken"), biased_program.num_sites)
        run_with(biased_program, tool)
        for site, bias in edge.biases().items():
            assert tool.site_accuracy(site).accuracy == pytest.approx(bias)

    def test_misprediction_rate_complements_accuracy(self, biased_program):
        tool = PredictorTool(paper_gshare(), biased_program.num_sites)
        run_with(biased_program, tool)
        acc = tool.site_accuracy(0)
        if acc.executed:
            assert acc.accuracy + acc.misprediction_rate == pytest.approx(1.0)
