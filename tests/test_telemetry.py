"""Tests for the telemetry plane (PR 8).

Unit tiers cover each piece in isolation — the JSONL metric TSDB and its
window math, the scraper's miss accounting, the SLO rule state machine,
the supervisor watchdog (against a fake supervisor), the flight
recorder, structured JSON logs, and the ``top`` dashboard — all against
temp dirs, no subprocesses.  The chaos end-to-end (kill -9 a shard,
watch the alert fire, the flight record drop, and the watchdog restore
the fleet) runs real shard processes under the ``slow`` marker.
"""

from __future__ import annotations

import json
import math
import time
from types import SimpleNamespace

import pytest

from repro.obs.metrics import Registry
from repro.obs.slo import AlertManager, SloRule, default_fleet_rules, load_rules
from repro.obs.tsdb import MetricTSDB, bucket_percentile, flatten_snapshot


def _hist(buckets, counts, total=None, hsum=0.0):
    """A flattened cumulative-histogram state dict."""
    return {"sum": hsum, "count": total if total is not None else sum(counts),
            "counts": list(counts), "buckets": list(buckets)}


# ----------------------------------------------------------------------
# Metric TSDB
# ----------------------------------------------------------------------


class TestMetricTSDB:
    def test_snapshot_roundtrip_through_disk(self, tmp_path):
        registry = Registry()
        registry.counter("requests_total").inc(5)
        registry.gauge("live").set(2)
        registry.counter("per_shard_total").labels(shard="s0").inc(3)
        registry.histogram("lat", buckets=(0.1, 1.0)).observe(0.5)
        with MetricTSDB(tmp_path) as tsdb:
            tsdb.append("s0", registry.snapshot(), ts=100.0)
        with MetricTSDB(tmp_path) as tsdb:
            sample = tsdb.latest_sample("s0")
            assert sample.ts == 100.0
            assert sample.scalars["requests_total"] == 5
            assert sample.scalars["live"] == 2
            assert sample.scalars['per_shard_total{shard="s0"}'] == 3
            assert sample.histograms["lat"]["count"] == 1

    def test_range_query_is_ordered_and_filtered(self, tmp_path):
        with MetricTSDB(tmp_path) as tsdb:
            tsdb.append_flat("a", {"x": 1}, ts=3.0)
            tsdb.append_flat("b", {"x": 9}, ts=2.0)
            tsdb.append_flat("a", {"x": 2}, ts=5.0)
            assert tsdb.range_query("x", source="a") == [(3.0, 1), (5.0, 2)]
            assert tsdb.latest("x", source="a") == (5.0, 2)
            assert tsdb.latest("missing") is None

    def test_rate_is_counter_reset_aware(self, tmp_path):
        with MetricTSDB(tmp_path) as tsdb:
            tsdb.append_flat("s0", {"c": 10}, ts=0.0)
            tsdb.append_flat("s0", {"c": 20}, ts=5.0)
            tsdb.append_flat("s0", {"c": 3}, ts=10.0)  # restart: counter reset
            # 10 (before the reset) + 3 (after) = 13 over a 10s window.
            assert tsdb.delta("c", window=10.0, now=10.0) == pytest.approx(13)
            assert tsdb.rate("c", window=10.0, now=10.0) == pytest.approx(1.3)

    def test_delta_sums_over_sources(self, tmp_path):
        with MetricTSDB(tmp_path) as tsdb:
            for source, v0, v1 in (("s0", 0, 4), ("s1", 10, 16)):
                tsdb.append_flat(source, {"c": v0}, ts=0.0)
                tsdb.append_flat(source, {"c": v1}, ts=8.0)
            assert tsdb.delta("c", window=10.0, now=8.0) == pytest.approx(10)
            assert tsdb.delta("c", window=10.0, now=8.0, source="s1") == pytest.approx(6)

    def test_histogram_quantile_merges_sources(self, tmp_path):
        buckets = [0.1, 1.0, 10.0]
        with MetricTSDB(tmp_path) as tsdb:
            # s0 gains 10 sub-0.1 observations; s1 gains 10 in (1, 10].
            tsdb.append_flat("s0", {}, {"lat": _hist(buckets, [0, 0, 0, 0])}, ts=0.0)
            tsdb.append_flat("s0", {}, {"lat": _hist(buckets, [10, 0, 0, 0])}, ts=9.0)
            tsdb.append_flat("s1", {}, {"lat": _hist(buckets, [0, 0, 0, 0])}, ts=0.0)
            tsdb.append_flat("s1", {}, {"lat": _hist(buckets, [0, 0, 10, 0])}, ts=9.0)
            p50 = tsdb.histogram_quantile("lat", 0.50, window=10.0, now=9.0)
            p99 = tsdb.histogram_quantile("lat", 0.99, window=10.0, now=9.0)
            assert p50 <= 0.1
            assert 1.0 < p99 <= 10.0

    def test_histogram_quantile_empty_window_is_nan(self, tmp_path):
        with MetricTSDB(tmp_path) as tsdb:
            assert math.isnan(tsdb.histogram_quantile("lat", 0.99, window=5.0, now=100.0))
            # A single cumulative sample carries no in-window increase.
            tsdb.append_flat("s0", {}, {"lat": _hist([1.0], [5, 0])}, ts=99.0)
            assert math.isnan(tsdb.histogram_quantile("lat", 0.99, window=5.0, now=100.0))

    def test_torn_and_garbage_lines_read_as_misses(self, tmp_path):
        with MetricTSDB(tmp_path) as tsdb:
            tsdb.append_flat("s0", {"x": 1}, ts=1.0)
        seg = next(tmp_path.glob("seg-*.jsonl"))
        with open(seg, "a", encoding="utf-8") as fh:
            fh.write("not json at all\n")
            fh.write('{"ts": 2.0, "src": "s0", "m": {"x": 2}}\n')
            fh.write('{"ts": 3.0, "src": "s0", "m": {"x": 3}')  # torn tail
        with MetricTSDB(tmp_path) as tsdb:
            points = tsdb.range_query("x", source="s0")
        assert points == [(1.0, 1), (2.0, 2)]

    def test_segment_rotation_and_retention_compaction(self, tmp_path):
        tsdb = MetricTSDB(tmp_path, segment_max_bytes=200, retention_seconds=15.0)
        for i in range(30):
            tsdb.append_flat("s0", {"x": i}, ts=float(i))
        assert tsdb.stats()["segments"] > 1
        report = tsdb.compact(now=40.0)  # everything before ts=25 expires
        assert report["segments_removed"] >= 1
        points = tsdb.range_query("x")
        # Only the active (never-rewritten) segment may still straddle
        # the cutoff; everything in older segments is gone.
        assert points and all(ts >= 20.0 for ts, _v in points)
        assert not any(ts < 15.0 for ts, _v in points)
        # Appends keep working after compaction renumbered nothing live.
        tsdb.append_flat("s0", {"x": 99}, ts=101.0)
        assert tsdb.latest("x")[1] == 99
        tsdb.close()

    def test_reader_instance_sees_live_writer_appends(self, tmp_path):
        # A long-lived read-only instance (live `top` watching another
        # process's store) never appends, so its tail buffer stays
        # empty; recent-window queries must fall through to the disk
        # scan and keep seeing the writer's flushed lines — not serve
        # empty results from the tail fast path.
        reader = MetricTSDB(tmp_path)
        writer = MetricTSDB(tmp_path)
        # Strictly above both instances' open-time tail floors, like
        # wall-clock samples arriving after `top` has been up a while.
        now = time.time() + 60.0
        writer.append_flat("s0", {"c": 1}, ts=now)
        writer.append_flat("s0", {"c": 11}, ts=now + 5.0)
        assert reader.delta("c", window=10.0, now=now + 5.0) == pytest.approx(10)
        assert [v for _ts, v in reader.range_query("c", start=now - 1.0)] == [1, 11]
        assert reader.sources(window=10.0, now=now + 5.0) == {"s0": now + 5.0}
        # The writer itself still answers the same window from its tail.
        assert writer.delta("c", window=10.0, now=now + 5.0) == pytest.approx(10)
        writer.close()
        reader.close()

    def test_meta_roundtrip(self, tmp_path):
        with MetricTSDB(tmp_path) as tsdb:
            tsdb.set_meta(scrape_interval=0.5)
        with MetricTSDB(tmp_path) as tsdb:
            assert tsdb.meta()["scrape_interval"] == 0.5

    def test_bucket_percentile_interpolates(self):
        # 10 observations all in (0.1, 1.0]: p50 sits mid-bucket.
        value = bucket_percentile([0.1, 1.0], [0, 10, 0], 0.5)
        assert 0.1 < value <= 1.0


# ----------------------------------------------------------------------
# Scraper
# ----------------------------------------------------------------------


class TestTelemetryScraper:
    def test_scrapes_local_registries(self, tmp_path):
        from repro.obs.telemetry import TelemetryScraper

        registry = Registry()
        registry.counter("jobs_total").inc(7)
        with MetricTSDB(tmp_path) as tsdb:
            scraper = TelemetryScraper(tsdb, local_registries={"router": registry})
            scraper.tick(now=10.0)
            assert tsdb.latest("jobs_total", source="router") == (10.0, 7)
            assert scraper.ticks == 1

    def test_unreachable_shard_counts_misses(self, tmp_path):
        import socket

        from repro.obs.telemetry import TelemetryScraper

        # Grab a port that is definitely closed.
        sock = socket.socket()
        sock.bind(("127.0.0.1", 0))
        port = sock.getsockname()[1]
        sock.close()
        shard_map = SimpleNamespace(shards=[
            SimpleNamespace(name="s0", host="127.0.0.1", port=port)])
        with MetricTSDB(tmp_path) as tsdb:
            scraper = TelemetryScraper(tsdb, shard_map=shard_map,
                                       connect_timeout=0.2)
            scraper.tick(now=1.0)
            scraper.tick(now=2.0)
            assert scraper.misses["s0"] == 2
            assert "s0" not in scraper.last_seen
            assert scraper.shard_sources() == ["s0"]


# ----------------------------------------------------------------------
# SLO rules and alerts
# ----------------------------------------------------------------------


class TestSloRules:
    def test_rule_validation(self):
        with pytest.raises(ValueError):
            SloRule(name="x", kind="bogus", metric="m", threshold=1)
        with pytest.raises(ValueError):
            SloRule(name="x", kind="value", metric="m", threshold=1, op="!=")

    def test_load_rules_file(self, tmp_path):
        path = tmp_path / "rules.json"
        path.write_text(json.dumps({"rules": [
            {"name": "hot", "kind": "rate", "metric": "reqs_total",
             "threshold": 100, "window": 30},
        ]}))
        (rule,) = load_rules(path)
        assert rule.name == "hot" and rule.window == 30

    def test_default_fleet_rules_cover_the_issue_slos(self):
        names = {r.name for r in default_fleet_rules(scrape_interval=0.5)}
        assert "shard_down" in names
        assert "frame_latency_p99" in names
        assert any("evict" in n for n in names)


class TestAlertManager:
    def _manager(self, tmp_path, rules, **kwargs):
        tsdb = MetricTSDB(tmp_path)
        return tsdb, AlertManager(rules, tsdb, **kwargs)

    def test_value_rule_fires_after_for_ticks_and_resolves(self, tmp_path):
        fired, resolved = [], []
        rule = SloRule(name="hot", kind="value", metric="g", threshold=5,
                       for_ticks=2)
        tsdb, manager = self._manager(
            tmp_path, [rule],
            on_fire=fired.append, on_resolve=resolved.append)
        with tsdb:
            tsdb.append_flat("s0", {"g": 10}, ts=1.0)
            assert manager.evaluate(now=1.0) == []     # pending, 1 of 2 ticks
            firing = manager.evaluate(now=2.0)
            assert [a.rule for a in firing] == ["hot"]
            assert not resolved
            assert manager.active()[0]["source"] == "fleet"
            tsdb.append_flat("s0", {"g": 1}, ts=3.0)
            assert manager.evaluate(now=3.0) == []
            assert len(fired) == 1 and len(resolved) == 1
            assert resolved[0].state == "resolved"
            assert manager.active() == []

    def test_absent_rule_measures_scrape_age(self, tmp_path):
        rule = SloRule(name="shard_down", kind="absent", metric="up",
                       window=1.0, severity="page")
        tsdb, manager = self._manager(tmp_path, [rule])
        with tsdb:
            ok = manager.evaluate(now=10.0, shard_sources=["s0"],
                                  last_seen={"s0": 9.5})
            assert ok == []
            firing = manager.evaluate(now=12.0, shard_sources=["s0"],
                                      last_seen={"s0": 9.5})
            assert [a.source for a in firing] == ["s0"]
            # Never-seen shards read as infinitely stale.
            firing = manager.evaluate(now=12.0, shard_sources=["s0", "s9"],
                                      last_seen={"s0": 11.9})
            assert [a.source for a in firing] == ["s9"]

    def test_firing_state_mirrors_to_tsdb_for_top(self, tmp_path):
        from repro.obs.dashboard import active_alerts

        rule = SloRule(name="hot", kind="value", metric="g", threshold=5)
        tsdb, manager = self._manager(tmp_path, [rule])
        with tsdb:
            tsdb.append_flat("s0", {"g": 10}, ts=1.0)
            manager.evaluate(now=1.0)
            assert active_alerts(tsdb) == [{"rule": "hot", "source": "fleet"}]
            assert tsdb.latest("slo_alerts_active", source="alerts")[1] == 1
            tsdb.append_flat("s0", {"g": 0}, ts=2.0)
            manager.evaluate(now=2.0)
            assert active_alerts(tsdb) == []

    def test_nan_measurements_do_not_breach(self, tmp_path):
        rule = SloRule(name="lat", kind="quantile", metric="lat", threshold=0.5)
        tsdb, manager = self._manager(tmp_path, [rule])
        with tsdb:
            assert manager.evaluate(now=1.0) == []


# ----------------------------------------------------------------------
# Watchdog (fake supervisor)
# ----------------------------------------------------------------------


class _FakeProc:
    def __init__(self, alive=True):
        self._alive = alive
        self.pid = 4242
        self.killed = False

    def alive(self):
        return self._alive

    def kill(self):
        self.killed = True
        self._alive = False


class _FakeSupervisor:
    def __init__(self, names=("s0",), alive=False):
        self.processes = {n: _FakeProc(alive=alive) for n in names}
        self.respawned: list[str] = []

    def respawn(self, name):
        self.respawned.append(name)
        self.processes[name] = _FakeProc(alive=True)


class TestSupervisorWatchdog:
    def _watchdog(self, supervisor, **kwargs):
        from repro.obs.telemetry import SupervisorWatchdog

        kwargs.setdefault("miss_threshold", 2)
        kwargs.setdefault("backoff_base", 10.0)
        return SupervisorWatchdog(supervisor, **kwargs)

    def test_dead_shard_respawns_at_threshold(self):
        supervisor = _FakeSupervisor(alive=False)
        dog = self._watchdog(supervisor)
        assert dog.check({"s0": 1}, now=0.0) == []
        assert dog.check({"s0": 2}, now=1.0) == ["s0"]
        assert supervisor.respawned == ["s0"]
        assert dog.restarts == {"s0": 1}

    def test_backoff_suppresses_hot_looping(self):
        supervisor = _FakeSupervisor(alive=False)
        dog = self._watchdog(supervisor, backoff_base=10.0)
        assert dog.check({"s0": 2}, now=0.0) == ["s0"]
        supervisor.processes["s0"]._alive = False  # it crashed again
        assert dog.check({"s0": 2}, now=1.0) == []       # inside backoff
        assert dog.check({"s0": 2}, now=11.0) == ["s0"]  # backoff expired
        # Second restart doubles the backoff window.
        supervisor.processes["s0"]._alive = False
        assert dog.check({"s0": 2}, now=21.0) == []
        assert dog.check({"s0": 2}, now=32.0) == ["s0"]

    def test_clean_scrape_resets_the_streak(self):
        supervisor = _FakeSupervisor(alive=False)
        dog = self._watchdog(supervisor, backoff_base=10.0)
        dog.check({"s0": 2}, now=0.0)
        dog.check({"s0": 0}, now=1.0)  # healthy again
        supervisor.processes["s0"]._alive = False
        assert dog.check({"s0": 2}, now=11.0) == ["s0"]
        # Streak restarted from 1, so backoff stayed at base.
        assert dog._backoff(dog._streak["s0"]) == 10.0

    def test_hung_alive_process_needs_double_threshold_then_dies(self):
        supervisor = _FakeSupervisor(alive=True)
        proc = supervisor.processes["s0"]
        dog = self._watchdog(supervisor)
        assert dog.check({"s0": 2}, now=0.0) == []  # alive: grace period
        assert not proc.killed
        assert dog.check({"s0": 4}, now=1.0) == ["s0"]
        assert proc.killed
        assert supervisor.respawned == ["s0"]

    def test_unknown_shard_names_are_ignored(self):
        dog = self._watchdog(_FakeSupervisor())
        assert dog.check({"ghost": 99}, now=0.0) == []


# ----------------------------------------------------------------------
# Flight recorder
# ----------------------------------------------------------------------


class TestFlightRecorder:
    def _recorder(self, tmp_path, **kwargs):
        from repro.obs.flightrec import FlightRecorder
        from repro.obs.tracing import Tracer

        tracer = Tracer(enabled=False)
        kwargs.setdefault("min_interval", 100.0)
        return FlightRecorder(tmp_path, name="t", tracer=tracer, **kwargs), tracer

    def test_dump_writes_ring_and_rate_limits(self, tmp_path):
        recorder, tracer = self._recorder(tmp_path, capacity=100)
        recorder.arm()
        assert tracer.enabled
        with tracer.span("work"):
            pass
        first = recorder.dump(reason="test")
        assert first is not None and first.exists()
        doc = json.loads(first.read_text())
        assert any(e["name"] == "work" for e in doc["traceEvents"])
        assert recorder.dump(reason="again") is None      # rate-limited
        forced = recorder.dump(reason="alert", force=True)
        assert forced is not None and forced != first
        assert recorder.dumps() == [first, forced]
        recorder.disarm()
        assert not tracer.enabled

    def test_empty_buffer_never_dumps(self, tmp_path):
        recorder, _tracer = self._recorder(tmp_path)
        recorder.arm()
        assert recorder.dump(force=True) is None
        assert recorder.dumps() == []

    def test_ring_capacity_bounds_memory(self, tmp_path):
        recorder, tracer = self._recorder(tmp_path, capacity=10)
        recorder.arm()
        for i in range(50):
            tracer.instant(f"e{i}")
        assert len(tracer.events()) <= 10

    def test_armed_hot_path_spans_are_sampled(self, tmp_path):
        recorder, tracer = self._recorder(tmp_path, hot_sample=4)
        recorder.arm()
        for _ in range(100):
            with tracer.span("service.frame", hot_path=True):
                pass
        for _ in range(10):
            with tracer.span("service.frame"):       # open/close/control
                pass
        names = [e["name"] for e in tracer.events()]
        assert names.count("service.frame") == 25 + 10
        # Armed spans skip the (syscall-priced) per-span CPU reading.
        assert all("cpu_ms" not in e["args"] for e in tracer.events())
        recorder.disarm()
        # Disarm restores full recording for e.g. an explicit --trace run.
        tracer.configure(enabled=True)
        with tracer.span("service.frame", hot_path=True):
            pass
        assert len(tracer.events()) == 36
        assert "cpu_ms" in tracer.events()[-1]["args"]


# ----------------------------------------------------------------------
# Structured logs
# ----------------------------------------------------------------------


class TestStructuredLogs:
    def test_log_event_roundtrip_with_filters(self, tmp_path):
        import logging

        from repro.obs.logs import configure_logging, log_event, read_logs

        path = tmp_path / "svc.jsonl"
        configure_logging(path=path, logger_name="tlogs")
        logger = logging.getLogger("tlogs")
        log_event(logger, "session_opened", session="a", shard="s0")
        log_event(logger, "session_evicted", level=logging.WARNING,
                  session="a", idle_s=3.5)
        logger.info("plain message")
        docs = list(read_logs(path))
        assert [d.get("event") for d in docs] == \
            ["session_opened", "session_evicted", None]
        assert docs[0]["session"] == "a" and docs[0]["pid"]
        warnings = list(read_logs(path, level="warning"))
        assert [d["event"] for d in warnings] == ["session_evicted"]
        assert [d["event"] for d in read_logs(path, event="session_opened")] \
            == ["session_opened"]
        assert list(read_logs(path, grep="idle_s"))[0]["idle_s"] == 3.5

    def test_trace_ids_attach_inside_spans(self, tmp_path):
        import logging

        from repro.obs.logs import configure_logging, log_event, read_logs
        from repro.obs.tracing import Tracer

        tracer = Tracer(enabled=True)
        path = tmp_path / "svc.jsonl"
        configure_logging(path=path, logger_name="tspan")
        logger = logging.getLogger("tspan")
        with tracer.span("outer"):
            log_event(logger, "first")
            with tracer.span("inner"):
                log_event(logger, "second")
        log_event(logger, "outside")
        docs = {d["event"]: d for d in read_logs(path)}
        assert docs["first"]["trace_id"] == docs["second"]["trace_id"]
        assert docs["first"]["span_id"] != docs["second"]["span_id"]
        assert "trace_id" not in docs["outside"]
        same_trace = list(read_logs(path, trace_id=docs["first"]["trace_id"]))
        assert len(same_trace) == 2

    def test_directory_reads_merge_files_by_time(self, tmp_path):
        from repro.obs.logs import read_logs

        (tmp_path / "a.jsonl").write_text(
            '{"ts": 2.0, "level": "info", "msg": "two"}\n'
            "torn garbage\n")
        (tmp_path / "b.jsonl").write_text(
            '{"ts": 1.0, "level": "info", "msg": "one"}\n')
        assert [d["msg"] for d in read_logs(tmp_path)] == ["one", "two"]

    def test_format_record_is_greppable(self):
        from repro.obs.logs import format_record

        line = format_record({"ts": 1000.5, "level": "warning",
                              "logger": "repro.x", "event": "alert_fired",
                              "rule": "shard_down"})
        assert "alert_fired" in line and "rule=shard_down" in line
        assert "WARNI" in line

    def test_parse_since_epoch_passthrough(self):
        from repro.obs.logs import parse_since

        assert parse_since("1717171717.5") == 1717171717.5
        assert parse_since(" 42 ") == 42.0

    def test_parse_since_relative_durations(self):
        from repro.obs.logs import parse_since

        now = 10_000.0
        assert parse_since("30s", now=now) == now - 30.0
        assert parse_since("5m", now=now) == now - 300.0
        assert parse_since("2h", now=now) == now - 7200.0
        assert parse_since("1d", now=now) == now - 86400.0
        assert parse_since("1.5H", now=now) == now - 5400.0
        assert parse_since("0m", now=now) == now

    def test_parse_since_rejects_garbage(self):
        from repro.obs.logs import parse_since

        for bad in ("", "  ", "5x", "m", "-5m", "five minutes"):
            with pytest.raises(ValueError):
                parse_since(bad)


# ----------------------------------------------------------------------
# Alert-driven triage
# ----------------------------------------------------------------------


class TestAlertDrivenTriage:
    REGRESSED = (3, 7, 11)

    def _stocked_warehouse(self, tmp_path):
        from repro.store import ProfileWarehouse
        from repro.triage import seeded_run_pair

        warehouse = ProfileWarehouse(tmp_path / "wh")
        seeded_run_pair(warehouse, regressed=self.REGRESSED)
        return warehouse

    def _telemetry(self, tmp_path, **kwargs):
        from repro.obs.telemetry import FleetTelemetry

        kwargs.setdefault("watchdog", False)
        return FleetTelemetry(tmp_path / "telemetry", **kwargs)

    @staticmethod
    def _alert(rule="shard_down", source="s1"):
        from repro.obs.slo import Alert

        return Alert(rule=rule, source=source, severity="page",
                     value=math.inf, threshold=2.0)

    def test_alert_fire_writes_triage_report(self, tmp_path):
        from repro.triage import load_report

        warehouse = self._stocked_warehouse(tmp_path)
        tel = self._telemetry(tmp_path, warehouse_dir=warehouse.root,
                              triage_min_interval=0.0)
        try:
            tel._on_alert_fire(self._alert())
            path = tel.triage_dir / "triage_report.json"
            deadline = time.time() + 30
            while not path.exists() and time.time() < deadline:
                time.sleep(0.05)
            assert path.exists(), "alert never produced a triage report"
            # The writer thread publishes atomically, so an existing file
            # is always complete.
            report = load_report(path)
            assert report.bisect["minimal_set"] == sorted(self.REGRESSED)
            assert report.meta["trigger"] == "alert:shard_down:s1"
            deadline = time.time() + 10
            while tel.triage_reports == 0 and time.time() < deadline:
                time.sleep(0.05)
            assert tel.triage_reports == 1
            assert tel.last_triage["minimal_set"] == sorted(self.REGRESSED)
            status = tel.status()
            assert status["triage"]["reports"] == 1
            # A dated copy rides along for alert-storm archaeology.
            assert list(tel.triage_dir.glob("triage_1*.json"))
        finally:
            tel.tsdb.close()

    def test_rule_triage_flag_gates_the_hook(self, tmp_path):
        from repro.obs.slo import SloRule

        warehouse = self._stocked_warehouse(tmp_path)
        rules = [SloRule(name="shard_down", kind="absent", window=2.0,
                         triage=False)]
        tel = self._telemetry(tmp_path, warehouse_dir=warehouse.root,
                              rules=rules, triage_min_interval=0.0)
        try:
            tel._on_alert_fire(self._alert())
            time.sleep(0.3)
            assert not (tel.triage_dir / "triage_report.json").exists()
            assert tel.triage_reports == 0
        finally:
            tel.tsdb.close()

    def test_triage_now_skips_cleanly(self, tmp_path):
        from repro.store import ProfileWarehouse

        # No warehouse attached.
        tel = self._telemetry(tmp_path / "a")
        try:
            assert tel.triage_now() is None
            assert "triage" not in tel.status()
        finally:
            tel.tsdb.close()
        # A warehouse without a baseline/current pair.
        lonely = ProfileWarehouse(tmp_path / "b" / "wh")
        tel = self._telemetry(tmp_path / "b", warehouse_dir=lonely.root,
                              triage_min_interval=0.0)
        try:
            assert tel.triage_now() is None
            assert tel.triage_reports == 0
        finally:
            tel.tsdb.close()

    def test_triage_rate_limit(self, tmp_path):
        warehouse = self._stocked_warehouse(tmp_path)
        tel = self._telemetry(tmp_path, warehouse_dir=warehouse.root,
                              triage_min_interval=3600.0)
        try:
            first = tel.triage_now()
            assert first is not None
            assert first["bisect"]["minimal_set"] == sorted(self.REGRESSED)
            assert tel.triage_now() is None, "rate limit must hold"
            assert tel.triage_reports == 1
        finally:
            tel.tsdb.close()


# ----------------------------------------------------------------------
# Dashboard (top)
# ----------------------------------------------------------------------


class TestDashboard:
    def _seed_tsdb(self, root, now):
        tsdb = MetricTSDB(root / "tsdb")
        buckets = [0.001, 0.01, 0.1]
        for i, ts in enumerate((now - 8, now - 4, now - 1)):
            for shard in ("s0", "s1"):
                tsdb.append_flat(
                    shard,
                    {"service_events_total": 1000 * i,
                     "service_frames_total": 10 * i,
                     "service_sessions_active": 3,
                     "service_uptime_seconds": 60.0 + i,
                     "service_connections_open": 2},
                    {"service_frame_latency_seconds":
                        _hist(buckets, [5 * i, 2 * i, 0, 0], hsum=0.01 * i)},
                    ts=ts)
        return tsdb

    def test_overview_reports_shards_rates_and_latency(self, tmp_path):
        from repro.obs.dashboard import overview, render

        now = 1000.0
        with self._seed_tsdb(tmp_path, now) as tsdb:
            view = overview(tsdb, window=10.0, now=now)
        names = [row["shard"] for row in view["shards"]]
        assert names == ["s0", "s1"]
        assert view["rates"]["events/s"] == pytest.approx(2 * 2000 / 10.0)
        assert view["shards"][0]["sessions"] == 3
        assert view["frame_latency"]["p50"] <= 0.01
        assert view["alerts"] == []
        text = render(view)
        assert "s0" in text and "events/s" in text and "no active alerts" in text

    def test_top_cli_once_json(self, tmp_path, capsys):
        from repro import cli

        now = time.time()
        self._seed_tsdb(tmp_path, now).close()
        code = cli.main(["top", "--telemetry-dir", str(tmp_path),
                         "--once", "--json"])
        out = capsys.readouterr().out
        assert code == 0
        view = json.loads(out)
        assert [row["shard"] for row in view["shards"]] == ["s0", "s1"]

    def test_top_cli_exits_2_when_alerts_fire(self, tmp_path, capsys):
        from repro import cli

        now = time.time()
        tsdb = self._seed_tsdb(tmp_path, now)
        tsdb.append_flat(
            "alerts",
            {'slo_alert_firing{rule="shard_down",source="s1"}': 1,
             "slo_alerts_active": 1}, ts=now)
        tsdb.close()
        code = cli.main(["top", "--telemetry-dir", str(tmp_path), "--once"])
        out = capsys.readouterr().out
        assert code == 2
        assert "shard_down" in out

    def test_top_cli_without_tsdb_is_an_error(self, tmp_path, capsys):
        from repro import cli

        assert cli.main(["top", "--telemetry-dir", str(tmp_path / "nope"),
                         "--once"]) == 1

    def test_logs_cli_filters_and_tails(self, tmp_path, capsys):
        from repro import cli

        log_dir = tmp_path / "logs"
        log_dir.mkdir()
        (log_dir / "s0.jsonl").write_text(
            '{"ts": 1.0, "level": "info", "logger": "repro", '
            '"event": "session_opened", "session": "a"}\n'
            '{"ts": 2.0, "level": "warning", "logger": "repro", '
            '"event": "alert_fired", "rule": "shard_down"}\n')
        code = cli.main(["logs", str(log_dir), "--event", "alert_fired"])
        out = capsys.readouterr().out
        assert code == 0
        assert "shard_down" in out and "session_opened" not in out
        code = cli.main(["logs", str(log_dir), "--tail", "1", "--json"])
        doc = json.loads(capsys.readouterr().out)
        assert code == 0 and doc["event"] == "alert_fired"

    def test_logs_cli_since_accepts_relative_durations(self, tmp_path, capsys):
        from repro import cli

        log_dir = tmp_path / "logs"
        log_dir.mkdir()
        now = time.time()
        (log_dir / "s0.jsonl").write_text(
            f'{{"ts": {now - 3600.0}, "level": "info", "logger": "repro", '
            '"event": "old_event"}\n'
            f'{{"ts": {now - 10.0}, "level": "info", "logger": "repro", '
            '"event": "fresh_event"}\n')
        code = cli.main(["logs", str(log_dir), "--since", "5m"])
        out = capsys.readouterr().out
        assert code == 0
        assert "fresh_event" in out and "old_event" not in out
        # Absolute epoch timestamps keep working.
        code = cli.main(["logs", str(log_dir), "--since", str(now - 7200.0)])
        out = capsys.readouterr().out
        assert code == 0
        assert "fresh_event" in out and "old_event" in out

    def test_logs_cli_rejects_bad_since(self, tmp_path, capsys):
        from repro import cli

        log_dir = tmp_path / "logs"
        log_dir.mkdir()
        assert cli.main(["logs", str(log_dir), "--since", "yesterday"]) == 2
        err = capsys.readouterr().err
        assert "yesterday" in err


# ----------------------------------------------------------------------
# Chaos end-to-end: kill a shard, alert fires, watchdog restores
# ----------------------------------------------------------------------


@pytest.mark.slow
def test_fleet_chaos_alert_flightdump_watchdog_restore(tmp_path):
    import numpy as np

    from repro.core.profiler2d import ProfilerConfig
    from repro.fleet.harness import FleetHarness

    interval = 0.3
    with FleetHarness(tmp_path, num_shards=2, telemetry=True,
                      scrape_interval=interval) as fleet:
        with fleet.client() as client:
            client.open_session("chaos-a", 4, ProfilerConfig(slice_size=32))
            sites = np.arange(100, dtype=np.int64) % 4
            correct = (np.arange(100) % 2).astype(np.int8)
            client.send_events("chaos-a", sites, correct)
            client.close_session("chaos-a")
        deadline = time.time() + 15
        while fleet.telemetry.status()["ticks"] < 3:
            assert time.time() < deadline, "scraper never ticked"
            time.sleep(0.05)

        fleet.kill_shard("s1")
        killed_at = time.time()
        fired_at = None
        restored = False
        deadline = time.time() + 30
        while time.time() < deadline:
            status = fleet.telemetry.status()
            down = [a for a in status["alerts"] if a["rule"] == "shard_down"]
            if down and fired_at is None:
                fired_at = time.time()
                assert down[0]["source"] == "s1"
            if fired_at and not down and \
                    fleet.supervisor.processes["s1"].alive():
                restored = True
                break
            time.sleep(0.1)
        assert fired_at is not None, "shard_down never fired"
        assert restored, "watchdog never restored the shard"
        # The detection SLO: within ~2 scrape intervals plus slack for
        # for_ticks and thread scheduling.
        assert fired_at - killed_at < 10 * interval
        assert fleet.supervisor.restarts.get("s1", 0) >= 1

        # The alert dropped a flight record from the router-side recorder.
        flights = list((tmp_path / "telemetry" / "flight").glob("flight-*.json"))
        assert flights, "no flight record dumped on alert"
        doc = json.loads(flights[0].read_text())
        assert "traceEvents" in doc

        # Router's fleet_status carries telemetry + per-shard health.
        with fleet.client() as client:
            reply = client.control({"op": "fleet_status"})
        assert reply["telemetry"]["ticks"] > 0
        s1 = next(s for s in reply["shards"] if s["name"] == "s1")
        assert s1["alive"] and s1["restarts"] >= 1

        # The revived shard serves traffic: a fresh session works.
        with fleet.client() as client:
            client.open_session("chaos-b", 4, ProfilerConfig(slice_size=32))
            client.send_events(
                "chaos-b", np.zeros(10, dtype=np.int64),
                np.ones(10, dtype=np.int8))
            client.close_session("chaos-b")

    # Shard log files exist and carry structured events with trace ids.
    log_dir = tmp_path / "telemetry" / "logs"
    from repro.obs.logs import read_logs

    events = [d for d in read_logs(log_dir) if d.get("event")]
    assert any(d["event"] == "session_opened" for d in events)
    assert any(d.get("trace_id") for d in events)
