"""Tests for the 2D edge-profiling (bias) variant."""

import pytest

from repro.core.edge2d import Edge2DProfiler
from repro.core.profiler2d import ProfilerConfig
from repro.trace.synthetic import SiteSpec, bernoulli_site, interleave_sites


@pytest.fixture(scope="module")
def bias_trace():
    streams = {
        0: bernoulli_site(40_000, SiteSpec.stationary(0.9), seed=31),   # stable high bias
        1: bernoulli_site(40_000, SiteSpec.stationary(0.5), seed=32),   # stable mid bias
        2: bernoulli_site(40_000, SiteSpec.two_phase(0.2, 0.8), seed=33),  # bias flips
        3: bernoulli_site(40_000, SiteSpec.two_phase(0.9, 0.6), seed=34),  # bias shifts
    }
    return interleave_sites(streams, seed=35)


class TestEdge2D:
    def test_bias_varying_sites_detected(self, bias_trace):
        report = Edge2DProfiler().profile(bias_trace)
        detected = report.input_dependent_sites()
        assert {2, 3} <= detected

    def test_stable_sites_not_detected(self, bias_trace):
        report = Edge2DProfiler().profile(bias_trace)
        detected = report.input_dependent_sites()
        assert 0 not in detected
        assert 1 not in detected  # mid bias but *stable* -> STD fails

    def test_mean_bias_matches_generator(self, bias_trace):
        report = Edge2DProfiler().profile(bias_trace)
        assert report.mean_bias(0) == pytest.approx(0.9, abs=0.02)
        assert report.mean_bias(1) == pytest.approx(0.5, abs=0.02)

    def test_bias_std_reflects_phases(self, bias_trace):
        report = Edge2DProfiler().profile(bias_trace)
        assert report.bias_std(2) > report.bias_std(0)

    def test_overall_taken_rate(self, bias_trace):
        report = Edge2DProfiler().profile(bias_trace)
        expected = bias_trace.outcomes.mean()
        assert report.overall_taken_rate == pytest.approx(expected, abs=0.01)

    def test_profiled_sites(self, bias_trace):
        report = Edge2DProfiler().profile(bias_trace)
        assert report.profiled_sites() == {0, 1, 2, 3}

    def test_custom_thresholds(self, bias_trace):
        strict = Edge2DProfiler(std_th=0.5)  # Impossible bar: nothing detected.
        assert not strict.profile(bias_trace).input_dependent_sites()

    def test_series_passthrough(self, bias_trace):
        profiler = Edge2DProfiler(config=ProfilerConfig(keep_series=True))
        report = profiler.profile(bias_trace)
        indices, biases = report.site_series(2)
        assert len(indices) > 0
        assert ((biases >= 0) & (biases <= 1)).all()
