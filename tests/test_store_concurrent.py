"""Concurrent multi-writer warehouse tests (the fleet ingest path).

N shard servers finalize closed sessions into **one** warehouse
directory.  The warehouse's two-phase commit (segment files fsynced
first, manifest committed atomically under an flock) was built for this;
here it is proven under real concurrency at both layers:

* raw: N subprocesses ingest simultaneously into one root — every run
  committed, manifest consistent, ``check()`` clean;
* service: N in-process shard servers close keep-series sessions in
  parallel threads into one shared warehouse — every close returns a run
  id and every run is readable afterwards.
"""

from __future__ import annotations

import dataclasses
import os
import subprocess
import sys
import threading
from pathlib import Path

import numpy as np
import pytest

from repro.core.profiler2d import ProfilerConfig, TwoDProfiler
from repro.service.client import StreamingClient, stream_simulation
from repro.service.server import ServerThread
from repro.store import ProfileWarehouse

REPO_ROOT = Path(__file__).resolve().parents[1]

_INGEST_SCRIPT = """
import sys
import numpy as np
from repro.core.profiler2d import ProfilerConfig, TwoDProfiler
from repro.store import ProfileWarehouse

root, worker, runs = sys.argv[1], int(sys.argv[2]), int(sys.argv[3])
warehouse = ProfileWarehouse(root)
config = ProfilerConfig(slice_size=64, keep_series=True)
for i in range(runs):
    rng = np.random.default_rng(1000 * worker + i)
    profiler = TwoDProfiler(12, config)
    profiler.record_batch(rng.integers(0, 12, 4000), rng.integers(0, 2, 4000))
    warehouse.ingest(profiler.finish(), workload=f"w{worker}",
                     input_name=f"i{i}", predictor="synthetic", scale=1.0,
                     source="test")
print("done", worker)
"""


def _keep_series_report(seed: int):
    rng = np.random.default_rng(seed)
    profiler = TwoDProfiler(12, ProfilerConfig(slice_size=64, keep_series=True))
    profiler.record_batch(rng.integers(0, 12, 4000), rng.integers(0, 2, 4000))
    return profiler.finish()


class TestConcurrentIngest:
    @pytest.mark.slow
    def test_parallel_processes_share_one_warehouse(self, tmp_path):
        """4 writer processes x 5 runs each -> 20 committed, 0 corrupt."""
        root = tmp_path / "wh"
        workers = [
            subprocess.Popen(
                [sys.executable, "-c", _INGEST_SCRIPT, str(root), str(w), "5"],
                env=dict(os.environ, PYTHONPATH="src"),
                cwd=REPO_ROOT,
            )
            for w in range(4)
        ]
        for worker in workers:
            assert worker.wait(timeout=120) == 0

        warehouse = ProfileWarehouse(root)
        assert warehouse.check() == []
        stats = warehouse.stats()
        assert stats["runs"] == 20
        assert stats["corrupt_runs"] == 0
        # Every run is readable, not just present in the manifest.
        for record in warehouse.runs():
            assert warehouse.open_run(record.run_id).profiled_sites() is not None

    def test_threaded_ingest_single_process(self, tmp_path):
        """Thread-level concurrency on one warehouse object's root."""
        root = tmp_path / "wh"
        errors: list = []

        def _writer(worker: int) -> None:
            try:
                warehouse = ProfileWarehouse(root)
                for i in range(4):
                    warehouse.ingest(
                        _keep_series_report(100 * worker + i),
                        workload=f"w{worker}", input_name=f"i{i}",
                        predictor="synthetic", scale=1.0, source="test")
            except Exception as exc:  # pragma: no cover - surfaced below
                errors.append(exc)

        threads = [threading.Thread(target=_writer, args=(w,)) for w in range(4)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=120)
        assert errors == []
        warehouse = ProfileWarehouse(root)
        assert warehouse.check() == []
        assert warehouse.stats()["runs"] == 16

    def test_shard_servers_finalize_into_shared_warehouse(self, tmp_path):
        """3 shard servers, concurrent keep-series closes, one warehouse."""
        warehouse_dir = tmp_path / "wh"
        shards = [
            ServerThread(checkpoint_dir=tmp_path / "ckpt",
                         warehouse_dir=warehouse_dir,
                         shard_name=f"s{i}").start()
            for i in range(3)
        ]
        config = dataclasses.replace(
            ProfilerConfig(slice_size=64), keep_series=True)
        run_ids: list = []
        errors: list = []
        lock = threading.Lock()

        def _drive(shard_idx: int, stream_idx: int) -> None:
            try:
                rng = np.random.default_rng(10 * shard_idx + stream_idx)
                sites = rng.integers(0, 12, 4000).astype(np.int64)
                correct = rng.integers(0, 2, 4000).astype(np.int64)
                name = f"sess-{shard_idx}-{stream_idx}"
                with StreamingClient("127.0.0.1", shards[shard_idx].port) as client:
                    stream_simulation(client, name, sites, correct, config,
                                      num_sites=12,
                                      meta={"workload": name, "input": "live",
                                            "predictor": "synthetic"})
                    reply = client.close_session(name)
                run_id = reply["warehouse_run"]
                assert run_id is not None
                with lock:
                    run_ids.append(run_id)
            except Exception as exc:  # pragma: no cover - surfaced below
                errors.append(exc)

        try:
            threads = [
                threading.Thread(target=_drive, args=(s, i))
                for s in range(3) for i in range(3)
            ]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join(timeout=120)
        finally:
            for shard in shards:
                shard.drain()

        assert errors == []
        assert len(run_ids) == 9 and len(set(run_ids)) == 9
        warehouse = ProfileWarehouse(warehouse_dir)
        assert warehouse.check() == []
        assert warehouse.stats()["runs"] == 9
        workloads = {rec.workload for rec in warehouse.runs()}
        assert len(workloads) == 9  # one per closed session, none clobbered
