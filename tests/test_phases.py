"""Tests for the phase-shape classifier."""

import numpy as np
import pytest

from repro.analysis.phases import PhaseShape, classify_report, classify_series
from repro.core.profiler2d import ProfilerConfig, profile_trace
from repro.predictors import make_predictor, simulate
from repro.trace.synthetic import phased_trace


def series(values):
    return np.array(values, dtype=np.float64)


class TestClassifySeries:
    def test_flat(self):
        verdict = classify_series(series([0.8] * 40))
        assert verdict.shape is PhaseShape.FLAT

    def test_flat_with_small_noise(self):
        rng = np.random.default_rng(1)
        verdict = classify_series(series(0.8 + rng.normal(0, 0.005, 60)))
        assert verdict.shape is PhaseShape.FLAT

    def test_level_shift(self):
        verdict = classify_series(series([0.6] * 20 + [0.95] * 20))
        assert verdict.shape is PhaseShape.LEVEL_SHIFT
        assert 18 <= verdict.change_point <= 22
        assert verdict.level_before < verdict.level_after

    def test_level_shift_downward(self):
        verdict = classify_series(series([0.95] * 25 + [0.5] * 15))
        assert verdict.shape is PhaseShape.LEVEL_SHIFT
        assert verdict.level_before > verdict.level_after

    def test_oscillation(self):
        verdict = classify_series(series(([0.6] * 4 + [0.95] * 4) * 8))
        assert verdict.shape is PhaseShape.OSCILLATING
        assert verdict.crossings >= 10

    def test_drift(self):
        rng = np.random.default_rng(2)
        values = np.linspace(0.5, 0.95, 60) + rng.normal(0, 0.01, 60)
        verdict = classify_series(series(values))
        assert verdict.shape in (PhaseShape.DRIFT, PhaseShape.LEVEL_SHIFT)
        # A clean steep drift should be recognised as DRIFT specifically.
        steep = classify_series(series(np.linspace(0.4, 0.95, 40)))
        assert steep.shape in (PhaseShape.DRIFT, PhaseShape.LEVEL_SHIFT)

    def test_nan_entries_ignored(self):
        values = [0.6] * 20 + [float("nan")] * 5 + [0.95] * 20
        verdict = classify_series(series(values))
        assert verdict.shape is PhaseShape.LEVEL_SHIFT

    def test_short_series_flat(self):
        verdict = classify_series(series([0.1, 0.9]))
        assert verdict.shape is PhaseShape.FLAT

    def test_irregular_noise(self):
        rng = np.random.default_rng(3)
        verdict = classify_series(series(rng.uniform(0.3, 1.0, 50)))
        assert verdict.shape in (PhaseShape.OSCILLATING, PhaseShape.IRREGULAR)


class TestClassifyReport:
    def test_end_to_end_on_synthetic(self):
        trace, stationary, phased = phased_trace(4, 3, 20_000, seed=51)
        sim = simulate(make_predictor("bimodal"), trace)
        report = profile_trace(trace, simulation=sim,
                               config=ProfilerConfig(keep_series=True))
        verdicts = classify_report(report)
        # Two-phase sites must not be classified FLAT.
        for site in phased:
            assert verdicts[site].shape is not PhaseShape.FLAT
        # Two-phase sites are single level shifts by construction.
        shifts = sum(1 for site in phased
                     if verdicts[site].shape is PhaseShape.LEVEL_SHIFT)
        assert shifts >= len(phased) - 1

    def test_requires_series(self):
        trace, _s, _p = phased_trace(2, 1, 4000, seed=52)
        report = profile_trace(trace, predictor=make_predictor("bimodal"))
        with pytest.raises(ValueError, match="keep_series"):
            classify_report(report)

    def test_site_filter(self):
        trace, _s, _p = phased_trace(3, 1, 5000, seed=53)
        report = profile_trace(trace, predictor=make_predictor("bimodal"),
                               config=ProfilerConfig(keep_series=True))
        verdicts = classify_report(report, sites=[0, 1])
        assert set(verdicts) == {0, 1}
