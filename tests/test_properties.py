"""Property-based tests (hypothesis) for core invariants.

Covers: C-division semantics in the VM, constant folding vs. execution
equivalence, trace round-trips, predictor output contracts, online/offline
profiler equivalence on arbitrary traces, and metric identities.
"""

import math

import numpy as np
import pytest
from hypothesis import assume, given, settings, strategies as st

from repro.core.groundtruth import GroundTruth
from repro.core.metrics import evaluate_detection
from repro.core.profiler2d import ProfilerConfig, TwoDProfiler, profile_trace
from repro.core.stats import BranchSliceStats
from repro.lang import compile_source
from repro.predictors import make_predictor, simulate
from repro.trace.trace import BranchTrace
from repro.vm import InputSet, Machine


def run_expr(expression: str) -> int:
    program = compile_source(f"func main() {{ return {expression}; }}")
    return Machine(program).run(InputSet.make("t")).return_value


# ----------------------------------------------------------------------
# VM arithmetic semantics
# ----------------------------------------------------------------------


@given(a=st.integers(-10**9, 10**9), b=st.integers(-10**6, 10**6))
def test_c_division_identity(a, b):
    assume(b != 0)
    quotient = run_expr(f"({a}) / ({b})")
    remainder = run_expr(f"({a}) % ({b})")
    assert quotient * b + remainder == a
    # Truncation toward zero.
    assert quotient == int(a / b) or (a / b == quotient)  # exact int division
    if remainder != 0:
        assert (remainder < 0) == (a < 0)


@given(a=st.integers(-2**40, 2**40), n=st.integers(0, 63))
def test_shift_roundtrip(a, n):
    assert run_expr(f"(({a}) << {n}) >> {n}") == a


@given(a=st.integers(-10**6, 10**6), b=st.integers(-10**6, 10**6))
def test_comparison_consistency(a, b):
    assert run_expr(f"({a}) < ({b})") == int(a < b)
    assert run_expr(f"({a}) == ({b})") == int(a == b)
    assert run_expr(f"(({a}) < ({b})) || (({a}) == ({b})) || (({a}) > ({b}))") == 1


# ----------------------------------------------------------------------
# Constant folding equivalence
# ----------------------------------------------------------------------

_expr_leaf = st.integers(-100, 100).map(str)


def _combine(children):
    left, right = children
    operator = st.sampled_from(["+", "-", "*", "&", "|", "^", "<", "<=", "==", "!="])
    return operator.map(lambda op: f"({left} {op} {right})")


_expr = st.recursive(
    _expr_leaf,
    lambda inner: st.tuples(inner, inner).flatmap(_combine),
    max_leaves=12,
)


@settings(max_examples=60, deadline=None)
@given(expression=_expr)
def test_folding_preserves_value(expression):
    source = f"func main() {{ return {expression}; }}"
    optimized = Machine(compile_source(source, optimize=True)).run(InputSet.make("t"))
    plain = Machine(compile_source(source, optimize=False)).run(InputSet.make("t"))
    assert optimized.return_value == plain.return_value


# ----------------------------------------------------------------------
# Traces
# ----------------------------------------------------------------------


@st.composite
def traces(draw, max_sites=6, max_len=300):
    num_sites = draw(st.integers(1, max_sites))
    length = draw(st.integers(0, max_len))
    sites = draw(
        st.lists(st.integers(0, num_sites - 1), min_size=length, max_size=length)
    )
    outcomes = draw(st.lists(st.integers(0, 1), min_size=length, max_size=length))
    return BranchTrace(
        program="prop",
        input_name="x",
        num_sites=num_sites,
        sites=np.array(sites, dtype=np.int32),
        outcomes=np.array(outcomes, dtype=np.uint8),
    )


@settings(max_examples=40, deadline=None)
@given(trace=traces())
def test_trace_roundtrip(trace, tmp_path_factory):
    path = tmp_path_factory.mktemp("prop") / "t.npz"
    trace.save(path)
    loaded = BranchTrace.load(path)
    assert np.array_equal(loaded.sites, trace.sites)
    assert np.array_equal(loaded.outcomes, trace.outcomes)
    assert loaded.num_sites == trace.num_sites


@settings(max_examples=40, deadline=None)
@given(trace=traces())
def test_trace_count_invariants(trace):
    executed = trace.execution_counts()
    taken = trace.taken_counts()
    assert executed.sum() == len(trace)
    assert (taken <= executed).all()
    for site, bias in trace.site_bias().items():
        assert 0.0 <= bias <= 1.0


# ----------------------------------------------------------------------
# Predictors
# ----------------------------------------------------------------------


@settings(max_examples=20, deadline=None)
@given(
    trace=traces(),
    name=st.sampled_from(["bimodal", "gshare", "local", "gag", "tournament", "loop"]),
)
def test_simulation_contract(trace, name):
    result = simulate(make_predictor(name), trace)
    assert result.num_branches == len(trace)
    assert result.exec_counts.sum() == len(trace)
    assert (result.correct_counts <= result.exec_counts).all()
    assert set(np.unique(result.correct)) <= {0, 1}


@settings(max_examples=15, deadline=None)
@given(trace=traces())
def test_simulation_deterministic(trace):
    a = simulate(make_predictor("gshare"), trace)
    b = simulate(make_predictor("gshare"), trace)
    assert np.array_equal(a.correct, b.correct)


# ----------------------------------------------------------------------
# Profiler invariants + online/offline equivalence
# ----------------------------------------------------------------------


@settings(max_examples=25, deadline=None)
@given(trace=traces(max_sites=4, max_len=400), slice_size=st.integers(10, 120))
def test_online_offline_equivalence(trace, slice_size):
    assume(len(trace) > 0)
    config = ProfilerConfig(slice_size=slice_size, exec_threshold=2)
    sim = simulate(make_predictor("bimodal"), trace)
    offline = profile_trace(trace, simulation=sim, config=config)
    online = TwoDProfiler(trace.num_sites, config)
    for site, correct in zip(trace.sites.tolist(), sim.correct.tolist()):
        online.record(site, correct)
    online_report = online.finish()
    for site in range(trace.num_sites):
        a, b = offline.stats[site], online_report.stats[site]
        assert a.N == b.N
        assert a.NPAM == b.NPAM
        assert a.SPA == pytest.approx(b.SPA, abs=1e-9)
        assert a.SSPA == pytest.approx(b.SSPA, abs=1e-9)


@settings(max_examples=25, deadline=None)
@given(trace=traces(max_sites=4, max_len=400), slice_size=st.integers(10, 120))
def test_profiler_stat_invariants(trace, slice_size):
    assume(len(trace) > 0)
    config = ProfilerConfig(slice_size=slice_size, exec_threshold=2)
    report = profile_trace(trace, predictor=make_predictor("bimodal"), config=config)
    for stats in report.stats:
        assert stats.NPAM <= stats.N
        assert 0.0 <= stats.SPA <= stats.N + 1e-9
        assert stats.SSPA <= stats.SPA + 1e-9 or stats.N == 0
        if stats.N:
            assert 0.0 <= stats.mean <= 1.0
            assert 0.0 <= stats.std <= 0.5 + 1e-9


@settings(max_examples=30, deadline=None)
@given(
    accuracies=st.lists(st.floats(0.0, 1.0), min_size=1, max_size=60),
)
def test_slice_stats_bounds(accuracies):
    stats = BranchSliceStats()
    for accuracy in accuracies:
        stats.exec_counter = 1000
        stats.predict_counter = round(accuracy * 1000)
        stats.end_slice(exec_threshold=0)
    assert stats.N == len(accuracies)
    assert 0.0 <= stats.pam_fraction <= 1.0
    assert 0.0 <= stats.mean <= 1.0


# ----------------------------------------------------------------------
# Metrics identities
# ----------------------------------------------------------------------


@settings(max_examples=60, deadline=None)
@given(
    dependent=st.sets(st.integers(0, 20)),
    independent=st.sets(st.integers(0, 20)),
    predicted=st.sets(st.integers(0, 25)),
)
def test_metric_identities(dependent, independent, predicted):
    independent = independent - dependent
    truth = GroundTruth(
        dependent=dependent,
        independent=independent,
        universe=dependent | independent,
    )
    metrics = evaluate_detection(predicted, truth)
    assert metrics.identified_dep + metrics.identified_indep == len(truth.universe)
    assert metrics.correct_dep <= min(metrics.true_dep, metrics.identified_dep)
    assert metrics.correct_indep <= min(metrics.true_indep, metrics.identified_indep)
    for value in metrics.as_row().values():
        assert math.isnan(value) or 0.0 <= value <= 1.0
    # COV-dep and ACC-dep share a numerator.
    if metrics.true_dep and metrics.identified_dep:
        assert metrics.cov_dep * metrics.true_dep == pytest.approx(
            metrics.acc_dep * metrics.identified_dep
        )
