"""Input-population sweep engine: specs, runner, stability reports, CLI."""

import json

import pytest

from repro.cli import main
from repro.errors import ExperimentError
from repro.store import ProfileWarehouse
from repro.sweep import (
    PopulationSpec,
    generate_population,
    population_report,
    population_report_from_store,
    population_runs,
    run_sweep,
)
from repro.workloads import get_workload
from repro.workloads.inputs import rng, variant_seed

SPEC = PopulationSpec(workload="gapish", base_input="ref",
                      size=6, seed=3, scale=0.05)


@pytest.fixture(scope="module")
def sweep_store(tmp_path_factory):
    """One sweep, run once, shared by the read-only report/CLI tests."""
    root = tmp_path_factory.mktemp("sweep") / "wh"
    warehouse = ProfileWarehouse(root, create=True)
    result = run_sweep(SPEC, warehouse=warehouse)
    return warehouse, result, root


class TestVariantSeed:
    def test_variant_changes_the_stream(self):
        base = rng(7).integers(0, 1000, size=8).tolist()
        with variant_seed(3, 1):
            varied = rng(7).integers(0, 1000, size=8).tolist()
        assert base != varied

    def test_variant_is_deterministic(self):
        with variant_seed(3, 1):
            first = rng(7).integers(0, 1000, size=8).tolist()
        with variant_seed(3, 1):
            second = rng(7).integers(0, 1000, size=8).tolist()
        assert first == second

    def test_nesting_restores_previous_variant(self):
        with variant_seed(1):
            outer = rng(7).integers(0, 1000, size=8).tolist()
            with variant_seed(2):
                inner = rng(7).integers(0, 1000, size=8).tolist()
            again = rng(7).integers(0, 1000, size=8).tolist()
        after = rng(7).integers(0, 1000, size=8).tolist()
        assert outer == again != inner
        assert after == rng(7).integers(0, 1000, size=8).tolist()


class TestPopulationSpec:
    def test_tag_roundtrip(self):
        assert PopulationSpec.from_tag(SPEC.tag) == SPEC

    def test_tag_format(self):
        assert SPEC.tag == "sweep:gapish:ref~3x6@s0.05"

    def test_lane_names(self):
        assert SPEC.lane_name(0) == "ref~3.0"
        assert SPEC.lane_names == [f"ref~3.{i}" for i in range(6)]

    def test_size_validation(self):
        with pytest.raises(ExperimentError):
            PopulationSpec(workload="gapish", size=0)

    @pytest.mark.parametrize("tag", ["nope", "sweep:gapish", "sweep:gapish:ref",
                                     "sweep:gapish:ref~ax2@s1"])
    def test_malformed_tags(self, tag):
        with pytest.raises(ExperimentError):
            PopulationSpec.from_tag(tag)


class TestGeneratePopulation:
    def test_lanes_are_named_distinct_and_deterministic(self):
        first = generate_population(SPEC)
        second = generate_population(SPEC)
        assert [s.name for s in first] == SPEC.lane_names
        assert len({s.data for s in first}) == SPEC.size
        assert [(s.data, s.args) for s in first] == \
            [(s.data, s.args) for s in second]

    def test_seed_changes_every_lane(self):
        other = PopulationSpec(workload="gapish", base_input="ref",
                               size=6, seed=4, scale=0.05)
        a = generate_population(SPEC)
        b = generate_population(other)
        assert all(x.data != y.data for x, y in zip(a, b))

    def test_base_input_generation_is_untouched(self):
        # Growing populations must not perturb the plain named inputs.
        workload = get_workload("gapish")
        before = workload.make_input("ref", 0.05)
        generate_population(SPEC)
        after = workload.make_input("ref", 0.05)
        assert before.data == after.data and before.args == after.args


class TestRunSweep:
    def test_in_memory_only(self):
        result = run_sweep(SPEC)
        assert result.tag == SPEC.tag
        assert [lane.input_name for lane in result.lanes] == SPEC.lane_names
        assert result.run_ids == []
        assert result.total_events > 0
        assert all(lane.report.profiled_sites() for lane in result.lanes)

    def test_warehouse_ingest(self, sweep_store):
        warehouse, result, _ = sweep_store
        assert len(result.run_ids) == SPEC.size
        records = population_runs(warehouse, SPEC.tag)
        assert [rec.input for rec in records] == SPEC.lane_names
        assert all(rec.source == SPEC.tag for rec in records)
        assert all(rec.scale == SPEC.scale for rec in records)


class TestPopulationReport:
    def test_live_and_stored_reports_agree(self, sweep_store):
        warehouse, result, _ = sweep_store
        live = population_report(result)
        stored = population_report_from_store(warehouse, SPEC.tag)
        assert set(live.sites) == set(stored.sites)
        for site in live.sites:
            a, b = live.sites[site], stored.sites[site]
            assert (a.lanes, a.dependent, a.verdict) == \
                (b.lanes, b.dependent, b.verdict)
            assert a.mean_acc == pytest.approx(b.mean_acc)
        assert [(ln.lane, ln.flips) for ln in live.lanes] == \
            [(ln.lane, ln.flips) for ln in stored.lanes]

    def test_verdict_partition(self, sweep_store):
        _, result, _ = sweep_store
        report = population_report(result)
        all_sites = set(report.stable_dependent) | \
            set(report.stable_independent) | set(report.flaky)
        assert all_sites == set(report.sites)
        for site in report.stable_dependent:
            assert report.sites[site].dep_fraction == 1.0
        for site in report.stable_independent:
            assert report.sites[site].dep_fraction == 0.0
        for site in report.flaky:
            assert 0.0 < report.sites[site].dep_fraction < 1.0

    def test_extremes_ordering(self, sweep_store):
        _, result, _ = sweep_store
        report = population_report(result)
        conforming, deviant = report.extremes()
        assert conforming.flips <= deviant.flips
        ranked = report.ranked_lanes()
        assert ranked[0] == deviant and ranked[-1] == conforming

    def test_extremes_need_two_lanes(self):
        spec = PopulationSpec(workload="gapish", base_input="ref",
                              size=1, seed=0, scale=0.05)
        report = population_report(run_sweep(spec))
        with pytest.raises(ExperimentError):
            report.extremes()

    def test_json_and_write(self, sweep_store, tmp_path):
        _, result, _ = sweep_store
        report = population_report(result)
        path = report.write(tmp_path / "pop.json")
        doc = json.loads(path.read_text())
        assert doc["tag"] == SPEC.tag
        assert doc["num_lanes"] == SPEC.size
        assert len(doc["sites"]) == doc["num_sites"]
        assert {row["verdict"] for row in doc["sites"]} <= {"dep", "indep", "flaky"}
        rendered = report.render()
        assert SPEC.tag in rendered and "flaky" in rendered

    def test_threshold_overrides_change_verdicts(self, sweep_store):
        warehouse, _, _ = sweep_store
        strict = population_report_from_store(warehouse, SPEC.tag, std_th=1e9,
                                              pam_th=0.499)
        # An impossible STD threshold plus a near-0.5 PAM band kills
        # (almost) every dependent verdict.
        assert len(strict.stable_dependent) <= 1

    def test_missing_population_errors(self, sweep_store):
        warehouse, _, _ = sweep_store
        ghost = PopulationSpec(workload="gapish", base_input="ref",
                               size=4, seed=99, scale=0.05)
        with pytest.raises(ExperimentError, match="incomplete"):
            population_report_from_store(warehouse, ghost.tag)


class TestSweepCli:
    def test_run_and_report_and_bisect(self, capsys, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_2DPROF_CACHE", str(tmp_path / "cache"))
        store = str(tmp_path / "wh")
        spec = PopulationSpec(workload="gapish", base_input="ref",
                              size=4, seed=9, scale=0.05)
        code = main(["--scale", "0.05", "sweep", "run", "gapish",
                     "--size", "4", "--seed", "9", "--store", store])
        out = capsys.readouterr().out
        assert code == 0
        assert spec.tag in out and "4 lane(s)" in out

        code = main(["sweep", "report", spec.tag, "--store", store,
                     "--out", str(tmp_path / "pop.json")])
        out = capsys.readouterr().out
        assert code == 0
        assert "stable dependent" in out
        assert json.loads((tmp_path / "pop.json").read_text())["tag"] == spec.tag

        code = main(["db", "bisect", "--population", spec.tag,
                     "--store", store])
        out = capsys.readouterr().out
        assert code == 0
        assert "suspiciousness" in out

    def test_run_no_store_prints_summary(self, capsys, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_2DPROF_CACHE", str(tmp_path / "cache"))
        code = main(["--scale", "0.05", "sweep", "run", "gapish", "--size", "2",
                     "--no-store", "--summary"])
        out = capsys.readouterr().out
        assert code == 0
        assert "-       " in out  # no run ids without a store
        assert "lanes by consensus flips" in out

    def test_report_unknown_population(self, capsys, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_2DPROF_CACHE", str(tmp_path / "cache"))
        store = str(tmp_path / "wh")
        ProfileWarehouse(store, create=True)
        code = main(["sweep", "report", "sweep:gapish:ref~0x2@s1",
                     "--store", store])
        assert code == 1  # incomplete population -> clean CLI error

    def test_bisect_argument_validation(self, capsys, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_2DPROF_CACHE", str(tmp_path / "cache"))
        store = str(tmp_path / "wh")
        ProfileWarehouse(store, create=True)
        assert main(["db", "bisect", "--store", store]) == 2
        assert main(["db", "bisect", "r000001", "r000002", "--population",
                     "sweep:gapish:ref~0x2@s1", "--store", store]) == 2
