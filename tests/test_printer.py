"""Tests for the AST pretty-printer, including parse/print round-trips."""

import pytest

from repro.lang import ast, compile_source
from repro.lang.lexer import tokenize
from repro.lang.parser import parse
from repro.lang.printer import print_expr, print_program
from repro.vm import InputSet, Machine


def parse_source(source):
    return parse(tokenize(source))


def ast_equal(a, b) -> bool:
    """Structural AST equality ignoring source positions."""
    if type(a) is not type(b):
        return False
    if isinstance(a, list):
        return len(a) == len(b) and all(ast_equal(x, y) for x, y in zip(a, b))
    if isinstance(a, ast.Node):
        for field in vars(a):
            if field in ("line", "column"):
                continue
            if not ast_equal(getattr(a, field), getattr(b, field, None)):
                return False
        return True
    return a == b


def roundtrip(source):
    """Check the printer's normal form is a fixed point of parse/print.

    The printer normalizes unbraced if/loop bodies into blocks, so the raw
    AST of the original source may legitimately differ; stability of the
    printed form (print . parse . print == print) is the guarantee, and it
    implies the normalized ASTs agree structurally.
    """
    tree = parse_source(source)
    printed = print_program(tree)
    reparsed = parse_source(printed)
    printed_again = print_program(reparsed)
    assert printed == printed_again, printed
    assert ast_equal(reparsed, parse_source(printed_again))
    return printed


class TestExpressions:
    @pytest.mark.parametrize("expr", [
        "1 + 2 * 3",
        "(1 + 2) * 3",
        "a && b || !c",
        "x[i + 1]",
        "f(1, g(x), a[0])",
        "-x + ~y",
        "a << 2 >> 1",
        "a < b == c",
    ])
    def test_expression_roundtrip(self, expr):
        roundtrip(f"func main() {{ var a; var b; var c; var x; var y; var i;"
                  f" var q[4]; return 0; }}"
                  if False else
                  f"global a; global b; global c; global x; global y; global i;"
                  f" global q[4];"
                  f" func f(p) {{ return p; }} func g(p) {{ return p; }}"
                  f" func main() {{ return {expr.replace('x[', 'q[').replace('a[', 'q[')}; }}")

    def test_negative_literal_printable(self):
        expr = ast.IntLiteral(line=1, value=-5)
        text = print_expr(expr)
        assert "5" in text


class TestStatements:
    def test_full_program_roundtrip(self):
        roundtrip("""
        global total = 0;
        global table[16];

        func helper(a, b) {
            if (a > b) { return a - b; }
            else if (a < b) { return b - a; }
            return 0;
        }

        func main() {
            var i;
            for (i = 0; i < 10; i += 1) {
                if (i % 2 == 0 && i > 2) {
                    total += helper(i, 3);
                } else {
                    total -= 1;
                }
            }
            while (total > 100) { total /= 2; }
            do { total += 1; } while (total < 0);
            var j = 0;
            for (var k = 0; k < 4; k += 1) {
                j += k;
                if (j > 5) { break; }
                continue;
            }
            table[total % 16] = j;
            output(total);
            return total;
        }
        """)

    def test_unbraced_bodies_normalized(self):
        printed = roundtrip("func main() { if (1) return 2; else return 3; }")
        assert "{" in printed

    def test_empty_for_clauses(self):
        roundtrip("func main() { for (;;) { break; } return 0; }")

    def test_var_forms(self):
        roundtrip("func main() { var a; var b = 3; var c[7]; return b; }")

    def test_globals_forms(self):
        roundtrip("global a; global b = -3 + 1; global c[9]; func main() { }")

    @pytest.mark.parametrize("op", ["+", "-", "*", "/", "%", "&", "|", "^", "<<", ">>"])
    def test_compound_assignment_ops(self, op):
        roundtrip(f"func main() {{ var x = 9; x {op}= 2; return x; }}")


class TestSemanticPreservation:
    def test_printed_program_runs_identically(self):
        source = """
        global acc = 0;
        func step(v) {
            if (v % 3 == 0) { return v * 2; }
            return v - 1;
        }
        func main() {
            var i;
            for (i = 0; i < 50; i += 1) { acc += step(i); }
            output(acc);
            return acc;
        }
        """
        printed = print_program(parse_source(source))
        original = Machine(compile_source(source)).run(InputSet.make("t"))
        reprinted = Machine(compile_source(printed)).run(InputSet.make("t"))
        assert original.return_value == reprinted.return_value
        assert original.output == reprinted.output

    def test_workload_sources_roundtrip(self):
        from repro.workloads import all_workloads

        for workload in all_workloads():
            roundtrip(workload.source)
