"""Unit tests for the per-branch slice statistics and the three tests."""

import math

import pytest

from repro.core.stats import (
    BranchSliceStats,
    TestThresholds,
    classify,
    mean_test,
    pam_test,
    std_test,
)


def feed_slices(accuracies, executions=100, exec_threshold=0, use_fir=True,
                fir_cold_start=False):
    """Drive a BranchSliceStats through a sequence of slice accuracies."""
    stats = BranchSliceStats()
    for accuracy in accuracies:
        stats.exec_counter = executions
        stats.predict_counter = round(accuracy * executions)
        stats.end_slice(exec_threshold, use_fir, fir_cold_start)
    return stats


class TestSliceAccounting:
    def test_counters_reset_after_slice(self):
        stats = BranchSliceStats()
        stats.exec_counter = 50
        stats.predict_counter = 25
        stats.end_slice(exec_threshold=0)
        assert stats.exec_counter == 0 and stats.predict_counter == 0

    def test_below_threshold_slice_discarded(self):
        stats = BranchSliceStats()
        stats.exec_counter = 5
        stats.predict_counter = 5
        stats.end_slice(exec_threshold=10)
        assert stats.N == 0 and stats.SPA == 0.0

    def test_exactly_threshold_discarded(self):
        # Figure 9b line 1 uses strict '>'.
        stats = BranchSliceStats()
        stats.exec_counter = 10
        stats.predict_counter = 10
        stats.end_slice(exec_threshold=10)
        assert stats.N == 0

    def test_constant_accuracy_stats(self):
        stats = feed_slices([0.8] * 10)
        assert stats.N == 10
        assert stats.mean == pytest.approx(0.8)
        assert stats.std == pytest.approx(0.0, abs=1e-6)

    def test_mean_of_varying_series(self):
        stats = feed_slices([0.5, 1.0], use_fir=False)
        assert stats.mean == pytest.approx(0.75)

    def test_std_matches_population_formula(self):
        values = [0.2, 0.4, 0.6, 0.8]
        stats = feed_slices(values, use_fir=False)
        mean = sum(values) / len(values)
        var = sum((v - mean) ** 2 for v in values) / len(values)
        assert stats.std == pytest.approx(math.sqrt(var))

    def test_empty_stats_safe(self):
        stats = BranchSliceStats()
        assert stats.mean == 0.0 and stats.std == 0.0 and stats.pam_fraction == 0.0


class TestFIRFilter:
    def test_warm_start_first_slice_unfiltered(self):
        stats = feed_slices([0.6])
        assert stats.SPA == pytest.approx(0.6)

    def test_cold_start_halves_first_slice(self):
        stats = feed_slices([0.6], fir_cold_start=True)
        assert stats.SPA == pytest.approx(0.3)

    def test_filter_averages_consecutive_slices(self):
        stats = feed_slices([0.4, 0.8])
        # slice1 -> 0.4; slice2 -> (0.8 + 0.4)/2 = 0.6
        assert stats.SPA == pytest.approx(1.0)
        assert stats.LPA == pytest.approx(0.6)

    def test_filter_disabled(self):
        stats = feed_slices([0.4, 0.8], use_fir=False)
        assert stats.SPA == pytest.approx(1.2)

    def test_filter_reduces_variance_of_alternation(self):
        raw = feed_slices([0.2, 0.9] * 20, use_fir=False)
        filtered = feed_slices([0.2, 0.9] * 20, use_fir=True)
        assert filtered.std < raw.std


class TestPAMAccounting:
    def test_constant_series_has_zero_pam(self):
        # Strictly-greater comparison: identical values never exceed the mean.
        stats = feed_slices([0.7] * 20)
        assert stats.NPAM == 0

    def test_step_up_series_pam_fraction(self):
        stats = feed_slices([0.5] * 10 + [0.9] * 10, use_fir=False)
        # The high phase sits above the running mean.
        assert 0.3 <= stats.pam_fraction <= 0.6


class TestThreeTests:
    def test_mean_test_pass_and_fail(self):
        low = feed_slices([0.6] * 5)
        high = feed_slices([0.95] * 5)
        assert mean_test(low, mean_th=0.9)
        assert not mean_test(high, mean_th=0.9)

    def test_mean_test_empty_fails(self):
        assert not mean_test(BranchSliceStats(), mean_th=0.9)

    def test_std_test(self):
        flat = feed_slices([0.8] * 10)
        swingy = feed_slices([0.5, 0.9] * 10, use_fir=False)
        assert not std_test(flat, std_th=0.04)
        assert std_test(swingy, std_th=0.04)

    def test_pam_test_two_tailed(self):
        flat = feed_slices([0.7] * 20)           # fraction 0 -> fail low tail
        step = feed_slices([0.5] * 10 + [0.9] * 10, use_fir=False)
        assert not pam_test(flat, pam_th=0.05)
        assert pam_test(step, pam_th=0.05)

    def test_pam_test_high_tail(self):
        stats = BranchSliceStats(N=100, NPAM=99)
        assert not pam_test(stats, pam_th=0.05)
        stats = BranchSliceStats(N=100, NPAM=50)
        assert pam_test(stats, pam_th=0.05)

    def test_classify_requires_pam(self):
        # Low mean but flat: MEAN passes, PAM fails -> not input-dependent.
        flat_low = feed_slices([0.6] * 20)
        assert not classify(flat_low, TestThresholds(), overall_accuracy=0.9)

    def test_classify_std_route(self):
        swingy = feed_slices([0.5] * 10 + [0.95] * 10, use_fir=False)
        assert classify(swingy, TestThresholds(), overall_accuracy=0.5)

    def test_classify_mean_route(self):
        # Noisy low-accuracy branch: MEAN + PAM without a huge std.
        noisy_low = feed_slices([0.58, 0.62, 0.59, 0.61] * 10, use_fir=False)
        thresholds = TestThresholds(std_th=0.5)  # Force the MEAN route.
        assert classify(noisy_low, thresholds, overall_accuracy=0.9)

    def test_mean_th_none_uses_overall(self):
        stats = feed_slices([0.6, 0.62, 0.58, 0.6] * 10, use_fir=False)
        assert classify(stats, TestThresholds(mean_th=None), overall_accuracy=0.9)
        assert not classify(stats, TestThresholds(mean_th=0.5), overall_accuracy=0.9)
