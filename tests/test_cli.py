"""Tests for the command-line driver."""

import pytest

from repro.cli import build_parser, main


@pytest.fixture(autouse=True)
def isolated_cache(monkeypatch, tmp_path):
    monkeypatch.setenv("REPRO_2DPROF_CACHE", str(tmp_path / "cache"))


def run_cli(capsys, *argv):
    code = main(list(argv))
    captured = capsys.readouterr()
    return code, captured.out


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_scale_option(self):
        args = build_parser().parse_args(["--scale", "0.5", "list"])
        assert args.scale == 0.5


class TestCommands:
    def test_list(self, capsys):
        code, out = run_cli(capsys, "list")
        assert code == 0
        assert "gzipish" in out and "eonish" in out

    def test_profile(self, capsys):
        code, out = run_cli(capsys, "--scale", "0.03", "profile", "vortexish")
        assert code == 0
        assert "predicted input-dependent" in out

    def test_evaluate(self, capsys):
        code, out = run_cli(capsys, "--scale", "0.03", "evaluate", "vortexish")
        assert code == 0
        assert "COV-dep" in out and "ACC-indep" in out

    def test_fig2_needs_no_runs(self, capsys):
        code, out = run_cli(capsys, "fig", "2")
        assert code == 0
        assert "predication" in out

    def test_fig_unknown(self, capsys):
        code = main(["fig", "99"])
        assert code == 2

    def test_series(self, capsys):
        code, out = run_cli(capsys, "--scale", "0.05", "series", "vortexish")
        assert code == 0
        assert "mean=" in out

    def test_overhead(self, capsys):
        code, out = run_cli(capsys, "--scale", "0.02", "overhead", "mcfish")
        assert code == 0
        assert "2d+gshare" in out


class TestExtensionCommands:
    def test_whatif(self, capsys):
        code, out = run_cli(capsys, "--scale", "0.03", "whatif", "vortexish")
        assert code == 0
        assert "aggregate" in out and "2d-aware" in out

    def test_phases(self, capsys):
        code, out = run_cli(capsys, "--scale", "0.05", "phases", "vortexish")
        assert code == 0
        assert "phase shapes" in out

    def test_report(self, capsys, tmp_path):
        out = tmp_path / "r.md"
        code, text = run_cli(capsys, "--scale", "0.03", "report", "--out", str(out))
        assert code == 0
        content = out.read_text()
        assert "Figure 10" in content and "Figure 16" not in content
        assert "Table 4" in content
