"""Tests for the command-line driver."""

import pytest

from repro.cli import build_parser, main


@pytest.fixture(autouse=True)
def isolated_cache(monkeypatch, tmp_path):
    monkeypatch.setenv("REPRO_2DPROF_CACHE", str(tmp_path / "cache"))


def run_cli(capsys, *argv):
    code = main(list(argv))
    captured = capsys.readouterr()
    return code, captured.out


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_scale_option(self):
        args = build_parser().parse_args(["--scale", "0.5", "list"])
        assert args.scale == 0.5

    def test_series_accepts_jobs(self):
        args = build_parser().parse_args(["series", "gzipish", "--jobs", "2"])
        assert args.jobs == 2

    def test_overhead_accepts_jobs_and_workloads(self):
        args = build_parser().parse_args(
            ["overhead", "gzipish", "mcfish", "--jobs", "3"]
        )
        assert args.jobs == 3
        assert args.workloads == ["gzipish", "mcfish"]

    def test_serve_defaults(self):
        args = build_parser().parse_args(["serve"])
        assert args.port == 7421
        assert args.host == "127.0.0.1"

    def test_stream_defaults(self):
        args = build_parser().parse_args(["stream", "gzipish"])
        assert args.port == 7421
        assert args.checkpoint_every == 0
        assert not args.resume


class TestCommands:
    def test_list(self, capsys):
        code, out = run_cli(capsys, "list")
        assert code == 0
        assert "gzipish" in out and "eonish" in out

    def test_profile(self, capsys):
        code, out = run_cli(capsys, "--scale", "0.03", "profile", "vortexish")
        assert code == 0
        assert "predicted input-dependent" in out

    def test_evaluate(self, capsys):
        code, out = run_cli(capsys, "--scale", "0.03", "evaluate", "vortexish")
        assert code == 0
        assert "COV-dep" in out and "ACC-indep" in out

    def test_fig2_needs_no_runs(self, capsys):
        code, out = run_cli(capsys, "fig", "2")
        assert code == 0
        assert "predication" in out

    def test_fig_unknown(self, capsys):
        code = main(["fig", "99"])
        assert code == 2

    def test_series(self, capsys):
        code, out = run_cli(capsys, "--scale", "0.05", "series", "vortexish")
        assert code == 0
        assert "mean=" in out

    def test_overhead(self, capsys):
        code, out = run_cli(capsys, "--scale", "0.02", "overhead", "mcfish")
        assert code == 0
        assert "2d+gshare" in out

    def test_overhead_multiple_workloads(self, capsys):
        code, out = run_cli(
            capsys, "--scale", "0.02", "overhead", "mcfish", "gzipish", "--jobs", "2"
        )
        assert code == 0
        assert "mcfish" in out and "gzipish" in out

    def test_series_with_jobs(self, capsys):
        code, out = run_cli(
            capsys, "--scale", "0.05", "series", "vortexish", "--jobs", "2"
        )
        assert code == 0
        assert "mean=" in out


class TestStreamCommand:
    def test_stream_verify_and_pause_resume(self, capsys, tmp_path):
        from repro.service.server import ServerThread

        thread = ServerThread(checkpoint_dir=tmp_path / "ckpt").start()
        port = str(thread.port)
        try:
            # Full stream, verified bit-identical against the offline path.
            code, out = run_cli(
                capsys, "--scale", "0.03", "stream", "mcfish",
                "--port", port, "--verify",
            )
            assert code == 0
            assert "predicted input-dependent" in out
            assert "bit-identical" in out

            # Interrupted stream pauses at a checkpoint...
            code, out = run_cli(
                capsys, "--scale", "0.03", "stream", "vortexish",
                "--port", port, "--batch", "512",
                "--stop-after-events", "1024", "--session", "paused-run",
            )
            assert code == 0
            assert "paused" in out and "--resume" in out

            # ...and --resume finishes it, still matching offline exactly.
            code, out = run_cli(
                capsys, "--scale", "0.03", "stream", "vortexish",
                "--port", port, "--session", "paused-run",
                "--resume", "--verify",
            )
            assert code == 0
            assert "bit-identical" in out
        finally:
            thread.drain()


class TestExtensionCommands:
    def test_whatif(self, capsys):
        code, out = run_cli(capsys, "--scale", "0.03", "whatif", "vortexish")
        assert code == 0
        assert "aggregate" in out and "2d-aware" in out

    def test_phases(self, capsys):
        code, out = run_cli(capsys, "--scale", "0.05", "phases", "vortexish")
        assert code == 0
        assert "phase shapes" in out

    def test_report(self, capsys, tmp_path):
        out = tmp_path / "r.md"
        code, text = run_cli(capsys, "--scale", "0.03", "report", "--out", str(out))
        assert code == 0
        content = out.read_text()
        assert "Figure 10" in content and "Figure 16" not in content
        assert "Table 4" in content
