"""Tests for the command-line driver."""

import json

import pytest

from repro.cli import build_parser, main


@pytest.fixture(autouse=True)
def isolated_cache(monkeypatch, tmp_path):
    monkeypatch.setenv("REPRO_2DPROF_CACHE", str(tmp_path / "cache"))


def run_cli(capsys, *argv):
    code = main(list(argv))
    captured = capsys.readouterr()
    return code, captured.out


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_scale_option(self):
        args = build_parser().parse_args(["--scale", "0.5", "list"])
        assert args.scale == 0.5

    def test_series_accepts_jobs(self):
        args = build_parser().parse_args(["series", "gzipish", "--jobs", "2"])
        assert args.jobs == 2

    def test_overhead_accepts_jobs_and_workloads(self):
        args = build_parser().parse_args(
            ["overhead", "gzipish", "mcfish", "--jobs", "3"]
        )
        assert args.jobs == 3
        assert args.workloads == ["gzipish", "mcfish"]

    def test_serve_defaults(self):
        args = build_parser().parse_args(["serve"])
        assert args.port == 7421
        assert args.host == "127.0.0.1"

    def test_stream_defaults(self):
        args = build_parser().parse_args(["stream", "gzipish"])
        assert args.port == 7421
        assert args.checkpoint_every == 0
        assert not args.resume


class TestCommands:
    def test_list(self, capsys):
        code, out = run_cli(capsys, "list")
        assert code == 0
        assert "gzipish" in out and "eonish" in out

    def test_profile(self, capsys):
        code, out = run_cli(capsys, "--scale", "0.03", "profile", "vortexish")
        assert code == 0
        assert "predicted input-dependent" in out

    def test_evaluate(self, capsys):
        code, out = run_cli(capsys, "--scale", "0.03", "evaluate", "vortexish")
        assert code == 0
        assert "COV-dep" in out and "ACC-indep" in out

    def test_fig2_needs_no_runs(self, capsys):
        code, out = run_cli(capsys, "fig", "2")
        assert code == 0
        assert "predication" in out

    def test_fig_unknown(self, capsys):
        code = main(["fig", "99"])
        assert code == 2

    def test_series(self, capsys):
        code, out = run_cli(capsys, "--scale", "0.05", "series", "vortexish")
        assert code == 0
        assert "mean=" in out

    def test_overhead(self, capsys):
        code, out = run_cli(capsys, "--scale", "0.02", "overhead", "mcfish")
        assert code == 0
        assert "2d+gshare" in out

    def test_overhead_multiple_workloads(self, capsys):
        code, out = run_cli(
            capsys, "--scale", "0.02", "overhead", "mcfish", "gzipish", "--jobs", "2"
        )
        assert code == 0
        assert "mcfish" in out and "gzipish" in out

    def test_series_with_jobs(self, capsys):
        code, out = run_cli(
            capsys, "--scale", "0.05", "series", "vortexish", "--jobs", "2"
        )
        assert code == 0
        assert "mean=" in out


class TestStreamCommand:
    def test_stream_verify_and_pause_resume(self, capsys, tmp_path):
        from repro.service.server import ServerThread

        thread = ServerThread(checkpoint_dir=tmp_path / "ckpt").start()
        port = str(thread.port)
        try:
            # Full stream, verified bit-identical against the offline path.
            code, out = run_cli(
                capsys, "--scale", "0.03", "stream", "mcfish",
                "--port", port, "--verify",
            )
            assert code == 0
            assert "predicted input-dependent" in out
            assert "bit-identical" in out

            # Interrupted stream pauses at a checkpoint...
            code, out = run_cli(
                capsys, "--scale", "0.03", "stream", "vortexish",
                "--port", port, "--batch", "512",
                "--stop-after-events", "1024", "--session", "paused-run",
            )
            assert code == 0
            assert "paused" in out and "--resume" in out

            # ...and --resume finishes it, still matching offline exactly.
            code, out = run_cli(
                capsys, "--scale", "0.03", "stream", "vortexish",
                "--port", port, "--session", "paused-run",
                "--resume", "--verify",
            )
            assert code == 0
            assert "bit-identical" in out
        finally:
            thread.drain()


class TestExtensionCommands:
    def test_whatif(self, capsys):
        code, out = run_cli(capsys, "--scale", "0.03", "whatif", "vortexish")
        assert code == 0
        assert "aggregate" in out and "2d-aware" in out

    def test_phases(self, capsys):
        code, out = run_cli(capsys, "--scale", "0.05", "phases", "vortexish")
        assert code == 0
        assert "phase shapes" in out

    def test_report(self, capsys, tmp_path):
        out = tmp_path / "r.md"
        code, text = run_cli(capsys, "--scale", "0.03", "report", "--out", str(out))
        assert code == 0
        content = out.read_text()
        assert "Figure 10" in content and "Figure 16" not in content
        assert "Table 4" in content


class TestVersionAndThresholds:
    def test_version_flag(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(["--version"])
        assert excinfo.value.code == 0
        assert "repro-2dprof 1." in capsys.readouterr().out

    def test_threshold_flags_parse(self):
        args = build_parser().parse_args(
            ["profile", "gzipish", "--std-th", "0.08", "--pam-th", "0.1"])
        assert args.std_th == 0.08 and args.pam_th == 0.1
        for command in (["evaluate", "gzipish"], ["fig", "3"],
                        ["stream", "gzipish"], ["db", "reclassify", "r000001"]):
            args = build_parser().parse_args(command + ["--std-th", "0.02"])
            assert args.std_th == 0.02

    def test_thresholds_change_classification(self, capsys):
        code, strict = run_cli(capsys, "--scale", "0.03", "profile", "vortexish",
                               "--std-th", "0.9", "--pam-th", "1.0")
        assert code == 0
        # Impossible thresholds: STD can't exceed 0.5 and PAM can't exceed 1,
        # and the PAM test is conjunctive, so nothing may be flagged.
        assert "predicted input-dependent (0)" in strict

    def test_stream_keep_series_flag(self):
        args = build_parser().parse_args(["stream", "gzipish", "--keep-series"])
        assert args.keep_series

    def test_serve_warehouse_dir_flag(self):
        args = build_parser().parse_args(["serve", "--warehouse-dir", "/tmp/x"])
        assert args.warehouse_dir == "/tmp/x"
        assert build_parser().parse_args(["serve"]).warehouse_dir is None


class TestDbCommands:
    @pytest.fixture()
    def store(self, tmp_path):
        return str(tmp_path / "wh")

    def _ingest(self, capsys, store):
        return run_cli(capsys, "--scale", "0.03", "db", "ingest", "vortexish",
                       "--inputs", "train", "ref", "--store", store)

    def test_ingest_query_diff_reclassify(self, capsys, store):
        code, out = self._ingest(capsys, store)
        assert code == 0
        lines = [line for line in out.splitlines() if line.startswith("r")]
        assert len(lines) == 2
        train_id, ref_id = (line.split(":")[0] for line in lines)

        code, out = run_cli(capsys, "db", "query", "--store", store)
        assert code == 0
        assert train_id in out and "2 run(s)" in out

        code, out = run_cli(capsys, "db", "query", train_id, "--store", store)
        assert code == 0
        assert "profiled branches" in out and '"std_th": 0.04' in out

        code, diff_out = run_cli(capsys, "db", "diff", train_id, ref_id,
                                 "--store", store)
        assert code == 0
        assert "input-dependent (" in diff_out and "dependent fraction:" in diff_out

        code, out = run_cli(capsys, "db", "reclassify", train_id,
                            "--std-th", "0.9", "--pam-th", "1.0", "--store", store)
        assert code == 0
        assert "input-dependent (0):" in out

        # diff straight from the store matches the live pipeline's labels.
        from repro.core.experiment import ExperimentRunner, SuiteConfig

        truth = ExperimentRunner(SuiteConfig(scale=0.03)).ground_truth(
            "vortexish", "gshare")
        expected = " ".join(map(str, sorted(truth.dependent)))
        assert f"input-dependent ({len(truth.dependent)}): {expected}" in diff_out

    def test_ingest_is_idempotent(self, capsys, store):
        _code, first = self._ingest(capsys, store)
        _code, second = self._ingest(capsys, store)
        assert first == second  # dedupe returns the same run ids

    def test_site_series_output(self, capsys, store):
        self._ingest(capsys, store)
        code, out = run_cli(capsys, "db", "query", "r000001", "--site", "0",
                            "--store", store)
        assert code == 0
        assert all(len(line.split()) == 2 for line in out.splitlines() if line)

    def test_compact_and_gc(self, capsys, store):
        self._ingest(capsys, store)
        code, out = run_cli(capsys, "db", "compact", "--store", store)
        assert code == 0
        assert "2 -> 1 segment(s)" in out
        code, out = run_cli(capsys, "db", "gc", "--store", store)
        assert code == 0
        assert "gc:" in out
        code, out = run_cli(capsys, "db", "query", "--store", store)
        assert code == 0
        assert "2 run(s), 1 segment(s)" in out

    def test_gc_dry_run_previews_without_deleting(self, capsys, store):
        from pathlib import Path

        self._ingest(capsys, store)
        orphan = Path(store) / "segments" / "seg-dead"
        orphan.mkdir()
        (orphan / "acc.npy").write_bytes(b"partial")

        code, out = run_cli(capsys, "db", "gc", "--dry-run", "--store", store)
        assert code == 0
        assert "would remove" in out
        assert orphan.exists()

        code, out = run_cli(capsys, "db", "gc", "--store", store)
        assert code == 0
        assert "would remove" not in out
        assert not orphan.exists()

    def test_bisect_reports_the_regression(self, capsys, store):
        from repro.store import ProfileWarehouse
        from repro.triage import seeded_run_pair

        warehouse = ProfileWarehouse(store)
        good_id, bad_id = seeded_run_pair(warehouse, regressed=(3, 7, 11))

        code, out = run_cli(capsys, "db", "bisect", good_id, bad_id,
                            "--store", store)
        assert code == 0
        assert "[3, 7, 11]" in out
        assert "suspiciousness" in out.lower()

        # The JSON form carries the same verdict, machine readable.
        code, out = run_cli(capsys, "db", "bisect", good_id, bad_id,
                            "--json", "--store", store)
        doc = json.loads(out)
        assert code == 0
        assert doc["bisect"]["minimal_set"] == [3, 7, 11]
        assert doc["bisect"]["verified"] is True
        assert doc["bisect"]["resumed"] is True  # state survived run one

    def test_bisect_report_artifact(self, capsys, store, tmp_path):
        from repro.store import ProfileWarehouse
        from repro.triage import load_report, seeded_run_pair

        warehouse = ProfileWarehouse(store)
        good_id, bad_id = seeded_run_pair(warehouse, regressed=(5,))
        out_path = tmp_path / "report.json"
        code, _out = run_cli(capsys, "db", "bisect", good_id, bad_id,
                             "--report", str(out_path), "--store", store)
        assert code == 0
        report = load_report(out_path)
        assert report.bisect["minimal_set"] == [5]

    def test_join_runs(self, capsys, store):
        self._ingest(capsys, store)
        code, out = run_cli(capsys, "db", "join", "r000001", "r000002",
                            "--store", store)
        assert code == 0
        assert "shared branches" in out

    def test_missing_store_is_a_clean_error(self, capsys, tmp_path):
        code = main(["db", "query", "--store", str(tmp_path / "nope")])
        assert code == 1
