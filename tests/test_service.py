"""Tests for the streaming profiling service.

Three layers:

* **protocol** — frame round-trips and strict rejection of malformed,
  truncated, or oversized frames;
* **checkpoint** — snapshot/restore exactness and corruption-as-miss;
* **end-to-end** — a real asyncio server on a background thread, driven
  by the blocking client.  The acceptance pins: streamed reports are
  *bit-identical* to offline ``profile_trace`` (float-for-float, via the
  JSON shortest-repr round-trip), and a crash (no graceful shutdown) plus
  resume-from-checkpoint reproduces the identical report.
"""

from __future__ import annotations

import socket
import struct
import time

import numpy as np
import pytest

from repro.core.profiler2d import ProfilerConfig, TwoDProfiler, profile_trace
from repro.errors import ProtocolError, ServiceError
from repro.predictors import make_predictor, simulate
from repro.service import checkpoint as ckpt
from repro.service import protocol
from repro.service.client import StreamingClient, stream_simulation
from repro.service.protocol import serialize_report
from repro.service.server import ServerThread, ServiceLimits
from repro.trace.synthetic import phased_trace


@pytest.fixture(scope="module")
def stream_data():
    """A phased synthetic run: (trace, simulation, resolved config, offline)."""
    trace, _stationary, _phased = phased_trace(6, 3, 12_000, seed=7)
    sim = simulate(make_predictor("bimodal"), trace)
    config = ProfilerConfig().resolve(total_branches=len(trace))
    offline = serialize_report(profile_trace(trace, simulation=sim, config=config))
    return trace, sim, config, offline


# ----------------------------------------------------------------------
# Protocol framing
# ----------------------------------------------------------------------


class TestProtocol:
    def test_control_roundtrip(self):
        frame = protocol.encode_control({"op": "ping", "x": [1, 2.5, None]})
        frame_type, length = protocol.split_header(frame[:protocol.HEADER_BYTES])
        assert frame_type == protocol.FRAME_JSON
        assert protocol.decode_control(frame[protocol.HEADER_BYTES:]) == {
            "op": "ping", "x": [1, 2.5, None]
        }
        assert length == len(frame) - protocol.HEADER_BYTES

    def test_events_roundtrip(self):
        sites = np.array([0, 3, 7, 2**20], dtype=np.int64)
        correct = np.array([1, 0, 1, 1], dtype=np.int64)
        frame = protocol.encode_events(42, sites, correct)
        batch = protocol.decode_events(frame[protocol.HEADER_BYTES:])
        assert batch.session_id == 42 and len(batch) == 4
        np.testing.assert_array_equal(batch.sites, sites)
        np.testing.assert_array_equal(batch.correct, correct)

    def test_empty_batch_roundtrip(self):
        frame = protocol.encode_events(1, np.array([], dtype=np.int64), np.array([], dtype=np.int64))
        batch = protocol.decode_events(frame[protocol.HEADER_BYTES:])
        assert len(batch) == 0

    def test_unknown_frame_type_rejected(self):
        header = struct.pack("!BI", 0x99, 4)
        with pytest.raises(ProtocolError, match="unknown frame type"):
            protocol.split_header(header)

    def test_oversized_length_rejected(self):
        header = struct.pack("!BI", protocol.FRAME_JSON, protocol.MAX_FRAME_BYTES + 1)
        with pytest.raises(ProtocolError, match="exceeds limit"):
            protocol.split_header(header)

    def test_truncated_header_rejected(self):
        with pytest.raises(ProtocolError, match="truncated"):
            protocol.split_header(b"\x4a\x00")

    def test_bad_json_rejected(self):
        with pytest.raises(ProtocolError, match="malformed control"):
            protocol.decode_control(b"{nope")

    def test_non_object_json_rejected(self):
        with pytest.raises(ProtocolError, match="JSON object"):
            protocol.decode_control(b"[1, 2]")

    def test_event_count_mismatch_rejected(self):
        good = protocol.encode_events(1, np.array([5]), np.array([1]))
        payload = good[protocol.HEADER_BYTES:]
        with pytest.raises(ProtocolError, match="does not match count"):
            protocol.decode_events(payload + b"\x00\x00\x00\x00")
        with pytest.raises(ProtocolError, match="does not match count"):
            protocol.decode_events(payload[:-1])

    def test_truncated_event_head_rejected(self):
        with pytest.raises(ProtocolError, match="truncated event frame"):
            protocol.decode_events(b"\x00\x01")

    def test_encode_validates_site_range(self):
        with pytest.raises(ProtocolError, match="site id out of range"):
            protocol.encode_events(1, np.array([2**31]), np.array([0]))
        with pytest.raises(ProtocolError, match="site id out of range"):
            protocol.encode_events(1, np.array([-1]), np.array([0]))

    def test_encode_validates_correct_flags(self):
        with pytest.raises(ProtocolError, match="0 or 1"):
            protocol.encode_events(1, np.array([3]), np.array([2]))


# ----------------------------------------------------------------------
# Checkpoints
# ----------------------------------------------------------------------


class TestCheckpoint:
    def _profiler_with_data(self, seed: int = 0) -> TwoDProfiler:
        rng = np.random.default_rng(seed)
        profiler = TwoDProfiler(8, ProfilerConfig(slice_size=100, exec_threshold=2))
        profiler.record_batch(rng.integers(0, 8, size=730), rng.integers(0, 2, size=730))
        return profiler

    def test_roundtrip_resumes_byte_identical(self, tmp_path):
        profiler = self._profiler_with_data()
        ckpt.save_checkpoint(tmp_path, "sess", profiler, 730)
        restored, events = ckpt.load_checkpoint(tmp_path, "sess")
        assert events == 730
        assert serialize_report(restored.finish()) == serialize_report(profiler.finish())

    def test_missing_is_none(self, tmp_path):
        assert ckpt.load_checkpoint(tmp_path, "nothing") is None

    def test_corrupt_checkpoint_is_a_miss(self, tmp_path):
        profiler = self._profiler_with_data()
        path = ckpt.save_checkpoint(tmp_path, "sess", profiler, 10)
        path.write_bytes(b"garbage, not a zip")
        assert ckpt.load_checkpoint(tmp_path, "sess") is None

    def test_truncated_checkpoint_is_a_miss(self, tmp_path):
        profiler = self._profiler_with_data()
        path = ckpt.save_checkpoint(tmp_path, "sess", profiler, 10)
        path.write_bytes(path.read_bytes()[:40])
        assert ckpt.load_checkpoint(tmp_path, "sess") is None

    def test_delete_and_list(self, tmp_path):
        profiler = self._profiler_with_data()
        ckpt.save_checkpoint(tmp_path, "a", profiler, 1)
        ckpt.save_checkpoint(tmp_path, "b", profiler, 1)
        assert ckpt.list_checkpoints(tmp_path) == ["a", "b"]
        assert ckpt.delete_checkpoint(tmp_path, "a")
        assert not ckpt.delete_checkpoint(tmp_path, "a")
        assert ckpt.list_checkpoints(tmp_path) == ["b"]

    @pytest.mark.parametrize("bad", ["", "../x", "a/b", "a b", ".hidden", "x" * 200])
    def test_session_names_validated(self, bad):
        with pytest.raises(ServiceError, match="invalid session name"):
            ckpt.validate_session_name(bad)


# ----------------------------------------------------------------------
# End to end
# ----------------------------------------------------------------------


def _start_server(tmp_path, **kwargs) -> ServerThread:
    kwargs.setdefault("checkpoint_dir", tmp_path / "ckpt")
    return ServerThread(**kwargs).start()


class TestEndToEnd:
    def test_streamed_report_bit_identical_to_offline(self, tmp_path, stream_data):
        trace, sim, config, offline = stream_data
        server = _start_server(tmp_path)
        try:
            with StreamingClient("127.0.0.1", server.port) as client:
                outcome = stream_simulation(
                    client, "run", trace.sites, sim.correct, config,
                    batch_size=997, num_sites=trace.num_sites,
                )
                assert outcome.completed and outcome.events_total == len(trace)
                live = client.query("run")["report"]
                final = client.close_session("run")["report"]
            assert live == offline
            assert final == offline
        finally:
            server.drain()

    def test_query_does_not_disturb_the_stream(self, tmp_path, stream_data):
        trace, sim, config, offline = stream_data
        server = _start_server(tmp_path)
        try:
            with StreamingClient("127.0.0.1", server.port) as client:
                client.open_session("run", trace.num_sites, config)
                half = len(trace) // 2 + 17
                client.send_events("run", trace.sites[:half], sim.correct[:half])
                client.query("run")  # mid-stream query must not fold state
                client.send_events("run", trace.sites[half:], sim.correct[half:])
                assert client.query("run")["report"] == offline
        finally:
            server.drain()

    def test_crash_and_resume_identical_report(self, tmp_path, stream_data):
        """SIGKILL-equivalent: abort() skips drain, then resume from disk."""
        trace, sim, config, offline = stream_data
        server = _start_server(tmp_path)
        with StreamingClient("127.0.0.1", server.port) as client:
            outcome = stream_simulation(
                client, "run", trace.sites, sim.correct, config,
                batch_size=500, stop_after=4000, num_sites=trace.num_sites,
            )
            assert not outcome.completed
            # More events arrive after the checkpoint; the crash loses them.
            client.send_events("run", trace.sites[4000:4800], sim.correct[4000:4800])
        server.abort()

        server = _start_server(tmp_path)
        try:
            with StreamingClient("127.0.0.1", server.port) as client:
                outcome = stream_simulation(
                    client, "run", trace.sites, sim.correct, config,
                    batch_size=800, resume=True, num_sites=trace.num_sites,
                )
                assert outcome.resumed_from == 4000  # checkpoint, not the lost tail
                assert client.query("run")["report"] == offline
        finally:
            server.drain()

    def test_graceful_drain_checkpoints_everything(self, tmp_path, stream_data):
        trace, sim, config, offline = stream_data
        server = _start_server(tmp_path)
        with StreamingClient("127.0.0.1", server.port) as client:
            client.open_session("run", trace.num_sites, config)
            client.send_events("run", trace.sites[:5000], sim.correct[:5000])
        server.drain()  # SIGTERM path: checkpoint without an explicit request

        server = _start_server(tmp_path)
        try:
            with StreamingClient("127.0.0.1", server.port) as client:
                reply = client.open_session("run", trace.num_sites, config, resume=True)
                assert reply["resumed"] == "checkpoint" and reply["events"] == 5000
                client.send_events("run", trace.sites[5000:], sim.correct[5000:])
                assert client.query("run")["report"] == offline
        finally:
            server.drain()

    def test_concurrent_sessions_are_independent(self, tmp_path, stream_data):
        trace, sim, config, offline = stream_data
        other_sim = simulate(make_predictor("gshare"), trace)
        other_offline = serialize_report(
            profile_trace(trace, simulation=other_sim, config=config)
        )
        server = _start_server(tmp_path)
        try:
            with StreamingClient("127.0.0.1", server.port) as a, \
                 StreamingClient("127.0.0.1", server.port) as b:
                a.open_session("alpha", trace.num_sites, config)
                b.open_session("beta", trace.num_sites, config)
                # Interleave batches from two sessions over two connections.
                for start in range(0, len(trace), 2000):
                    stop = min(start + 2000, len(trace))
                    a.send_events("alpha", trace.sites[start:stop], sim.correct[start:stop])
                    b.send_events("beta", trace.sites[start:stop], other_sim.correct[start:stop])
                assert a.query("alpha")["report"] == offline
                assert b.query("beta")["report"] == other_offline
        finally:
            server.drain()

    def test_unknown_session_id_rejected_not_fatal(self, tmp_path, stream_data):
        trace, _sim, config, _offline = stream_data
        server = _start_server(tmp_path)
        try:
            with StreamingClient("127.0.0.1", server.port) as client:
                client.open_session("run", trace.num_sites, config)
                reply = client._request(
                    protocol.encode_events(999, np.array([0]), np.array([1]))
                )
                assert reply["ok"] is False and "unknown session id" in reply["error"]
                assert client.ping()["ok"]  # connection survives
        finally:
            server.drain()

    def test_payload_garbage_gets_error_reply(self, tmp_path, stream_data):
        trace, sim, config, offline = stream_data
        server = _start_server(tmp_path)
        try:
            with StreamingClient("127.0.0.1", server.port) as client:
                # Hand-craft a frame whose event count disagrees with its length.
                body = struct.pack("!II", 1, 5) + b"\x00" * 4
                frame = struct.pack("!BI", protocol.FRAME_EVENTS, len(body)) + body
                reply = client._request(frame)
                assert reply["ok"] is False and "count" in reply["error"]
                # The same connection keeps working afterwards.
                assert client.ping()["ok"]
                # And real traffic still flows end to end.
                outcome = stream_simulation(
                    client, "run", trace.sites, sim.correct, config,
                    batch_size=3000, num_sites=trace.num_sites,
                )
                assert outcome.completed
                assert client.query("run")["report"] == offline
                assert client.stats()["frames_rejected"] >= 1
        finally:
            server.drain()

    def test_corrupt_header_closes_only_that_connection(self, tmp_path, stream_data):
        trace, sim, config, offline = stream_data
        server = _start_server(tmp_path)
        try:
            bad = socket.create_connection(("127.0.0.1", server.port), timeout=10)
            bad.sendall(struct.pack("!BI", 0x7F, 12) + b"x" * 12)
            # Server replies with an error frame and closes this connection...
            time.sleep(0.2)
            bad.close()
            # ...but keeps serving others.
            with StreamingClient("127.0.0.1", server.port) as client:
                assert client.ping()["ok"]
        finally:
            server.drain()

    def test_batch_limit_enforced(self, tmp_path, stream_data):
        trace, sim, config, _offline = stream_data
        server = _start_server(tmp_path, limits=ServiceLimits(max_batch_events=100))
        try:
            with StreamingClient("127.0.0.1", server.port) as client:
                client.open_session("run", trace.num_sites, config)
                with pytest.raises(ServiceError, match="exceeds limit"):
                    client.send_events("run", trace.sites[:101], sim.correct[:101])
                # A conforming batch still goes through.
                assert client.send_events("run", trace.sites[:100], sim.correct[:100]) == 100
        finally:
            server.drain()

    def test_session_limit_enforced(self, tmp_path, stream_data):
        trace, _sim, config, _offline = stream_data
        server = _start_server(tmp_path, limits=ServiceLimits(max_sessions=1))
        try:
            with StreamingClient("127.0.0.1", server.port) as client:
                client.open_session("one", trace.num_sites, config)
                with pytest.raises(ServiceError, match="session limit"):
                    client.open_session("two", trace.num_sites, config)
        finally:
            server.drain()

    def test_idle_sessions_checkpointed_and_evicted(self, tmp_path, stream_data):
        trace, sim, config, offline = stream_data
        server = _start_server(tmp_path, limits=ServiceLimits(idle_timeout=0.3))
        try:
            with StreamingClient("127.0.0.1", server.port) as client:
                client.open_session("run", trace.num_sites, config)
                client.send_events("run", trace.sites[:6000], sim.correct[:6000])
                deadline = time.monotonic() + 10
                while time.monotonic() < deadline:
                    if client.stats()["sessions_evicted"] >= 1:
                        break
                    time.sleep(0.1)
                stats = client.stats()
                assert stats["sessions_evicted"] >= 1
                assert stats["checkpoints_written"] >= 1
                # Eviction checkpointed the state: resume and finish the run.
                reply = client.open_session("run", trace.num_sites, config, resume=True)
                assert reply["resumed"] == "checkpoint" and reply["events"] == 6000
                client.send_events("run", trace.sites[6000:], sim.correct[6000:])
                assert client.query("run")["report"] == offline
        finally:
            server.drain()

    def test_stats_frame_counts(self, tmp_path, stream_data):
        trace, sim, config, _offline = stream_data
        server = _start_server(tmp_path)
        try:
            with StreamingClient("127.0.0.1", server.port) as client:
                stream_simulation(
                    client, "run", trace.sites, sim.correct, config,
                    batch_size=1000, checkpoint_every=2, num_sites=trace.num_sites,
                )
                client.query("run")
                stats = client.stats()
            assert stats["events_total"] == len(trace)
            assert stats["sessions_opened"] == 1
            assert stats["active_sessions"] == 1
            assert stats["queries_served"] == 1
            assert stats["checkpoints_written"] >= len(trace) // 2000
            assert stats["events_per_second"] > 0
            assert stats["sessions"] == {"run": len(trace)}
        finally:
            server.drain()

    def test_reattach_in_memory_after_reconnect(self, tmp_path, stream_data):
        trace, sim, config, offline = stream_data
        server = _start_server(tmp_path)
        try:
            with StreamingClient("127.0.0.1", server.port) as client:
                client.open_session("run", trace.num_sites, config)
                client.send_events("run", trace.sites[:3000], sim.correct[:3000])
            # New connection, same server process: live state reattaches.
            with StreamingClient("127.0.0.1", server.port) as client:
                reply = client.open_session("run", trace.num_sites, config)
                assert reply["resumed"] == "memory" and reply["events"] == 3000
                client.send_events("run", trace.sites[3000:], sim.correct[3000:])
                assert client.query("run")["report"] == offline
        finally:
            server.drain()

    def test_open_num_sites_mismatch_rejected(self, tmp_path, stream_data):
        trace, _sim, config, _offline = stream_data
        server = _start_server(tmp_path)
        try:
            with StreamingClient("127.0.0.1", server.port) as client:
                client.open_session("run", trace.num_sites, config)
                with pytest.raises(ServiceError, match="num_sites"):
                    client.open_session("run", trace.num_sites + 5, config)
        finally:
            server.drain()

    def test_event_site_out_of_range_rejected(self, tmp_path, stream_data):
        trace, _sim, config, _offline = stream_data
        server = _start_server(tmp_path)
        try:
            with StreamingClient("127.0.0.1", server.port) as client:
                client.open_session("run", trace.num_sites, config)
                with pytest.raises(ServiceError, match="beyond num_sites"):
                    client.send_events(
                        "run", np.array([trace.num_sites + 3]), np.array([1])
                    )
                assert client.stats()["frames_rejected"] == 1
        finally:
            server.drain()


# ----------------------------------------------------------------------
# Warehouse finalization on close
# ----------------------------------------------------------------------


class TestWarehouseFinalize:
    def _keep_series(self, config):
        import dataclasses

        return dataclasses.replace(config, keep_series=True)

    def test_close_ingests_tagged_session(self, tmp_path, stream_data):
        from repro.store import ProfileWarehouse

        trace, sim, config, _offline = stream_data
        server = _start_server(tmp_path, warehouse_dir=tmp_path / "wh")
        try:
            with StreamingClient("127.0.0.1", server.port) as client:
                stream_simulation(
                    client, "run", trace.sites, sim.correct,
                    self._keep_series(config), num_sites=trace.num_sites,
                    meta={"workload": "synthetic", "input": "train",
                          "predictor": "bimodal", "scale": 1.0},
                )
                reply = client.close_session("run")
            run_id = reply["warehouse_run"]
            assert run_id is not None
        finally:
            server.drain()
        warehouse = ProfileWarehouse(tmp_path / "wh", create=False)
        record = warehouse.manifest().runs[run_id]
        assert (record.workload, record.input, record.predictor) == (
            "synthetic", "train", "bimodal")
        assert record.source == "service" and not record.has_counts
        # The stored matrix classifies exactly like the live session did.
        from repro.store import reclassify

        run = warehouse.open_run(run_id)
        clone = profile_trace(trace, simulation=sim, config=self._keep_series(config))
        assert reclassify(run)["input_dependent"] == sorted(
            clone.input_dependent_sites())

    def test_close_without_series_skips_ingest(self, tmp_path, stream_data):
        from repro.store import ProfileWarehouse

        trace, sim, config, _offline = stream_data
        server = _start_server(tmp_path, warehouse_dir=tmp_path / "wh")
        try:
            with StreamingClient("127.0.0.1", server.port) as client:
                stream_simulation(client, "run", trace.sites, sim.correct,
                                  config, num_sites=trace.num_sites)
                reply = client.close_session("run")
            assert reply["warehouse_run"] is None
        finally:
            server.drain()
        assert ProfileWarehouse(tmp_path / "wh").runs() == []

    def test_close_without_warehouse_unchanged(self, tmp_path, stream_data):
        trace, sim, config, _offline = stream_data
        server = _start_server(tmp_path)
        try:
            with StreamingClient("127.0.0.1", server.port) as client:
                stream_simulation(client, "run", trace.sites, sim.correct,
                                  self._keep_series(config),
                                  num_sites=trace.num_sites)
                assert client.close_session("run")["warehouse_run"] is None
        finally:
            server.drain()

    def test_bad_meta_rejected_at_open(self, tmp_path, stream_data):
        trace, _sim, config, _offline = stream_data
        server = _start_server(tmp_path)
        try:
            with StreamingClient("127.0.0.1", server.port) as client:
                with pytest.raises(ServiceError, match="meta"):
                    client.open_session("run", trace.num_sites, config,
                                        meta={"workload": ["not", "scalar"]})
        finally:
            server.drain()


# ----------------------------------------------------------------------
# Drain / eviction observability (fleet satellite)
# ----------------------------------------------------------------------


class TestLifecycleObservability:
    def test_drain_observes_duration_histogram(self, tmp_path, stream_data):
        trace, sim, config, _offline = stream_data
        server = _start_server(tmp_path)
        with StreamingClient("127.0.0.1", server.port) as client:
            client.open_session("run", trace.num_sites, config)
            client.send_events("run", trace.sites[:3000], sim.correct[:3000])
            before = client.stats()
            assert before["drain"] == {"count": 0, "sum_seconds": 0.0}
        server.drain()
        metrics = server.server.metrics
        assert metrics.drain_seconds.count == 1
        assert metrics.drain_seconds.sum >= 0.0
        # The registry carries it too (what the router scrapes).
        assert "service_drain_seconds" in metrics.registry.snapshot()

    def test_drain_and_evict_emit_spans(self, tmp_path, stream_data):
        from repro.obs import get_tracer

        trace, sim, config, _offline = stream_data
        tracer = get_tracer()
        tracer.clear()
        tracer.configure(enabled=True)
        try:
            server = _start_server(
                tmp_path, shard_name="s9",
                limits=ServiceLimits(idle_timeout=0.2))
            with StreamingClient("127.0.0.1", server.port) as client:
                client.open_session("run", trace.num_sites, config)
                client.send_events("run", trace.sites[:3000], sim.correct[:3000])
                deadline = time.monotonic() + 10
                while time.monotonic() < deadline:
                    if client.stats()["sessions_evicted"] >= 1:
                        break
                    time.sleep(0.05)
                assert client.stats()["sessions_evicted"] >= 1
                client.open_session("run", trace.num_sites, config, resume=True)
            server.drain()
            spans = {e["name"]: e for e in tracer.events() if e.get("ph") == "X"}
            evict = spans["service.evict"]
            assert evict["args"]["session"] == "run"
            assert evict["args"]["checkpointed"] is True
            drain = spans["service.drain"]
            assert drain["args"]["shard"] == "s9"
            assert drain["args"]["sessions"] == 1  # the resumed session
            assert drain["args"]["checkpoints"] == 1
        finally:
            tracer.configure(enabled=False)
            tracer.clear()

    def test_metrics_op_returns_registry_snapshot_with_shard(self, tmp_path, stream_data):
        trace, sim, config, _offline = stream_data
        server = _start_server(tmp_path, shard_name="s3")
        try:
            with StreamingClient("127.0.0.1", server.port) as client:
                stream_simulation(client, "run", trace.sites, sim.correct,
                                  config, num_sites=trace.num_sites)
                reply = client.metrics()
            assert reply["shard"] == "s3"
            assert reply["stats"]["shard"] == "s3"
            snapshot = reply["snapshot"]
            assert snapshot["service_events_total"]["value"] == len(trace)
            assert snapshot["service_frame_latency_seconds"]["count"] > 0
        finally:
            server.drain()
