"""Tests for the predication cost model (paper Section 2.1, Figure 2)."""

import pytest

from repro.core.predication import (
    AdvisorDecision,
    BranchProfileSummary,
    PredicationAdvisor,
    PredicationCosts,
    branch_cost,
    cost_sweep,
    crossover_misprediction_rate,
    predicated_cost,
    should_predicate,
)


class TestCostModel:
    def test_paper_parameters_crossover_near_7_percent(self):
        # The paper: penalty 30, exec_T = exec_N = 3, exec_pred = 5 ->
        # crossover at (5-3)/30 = 6.67%.
        costs = PredicationCosts()
        crossover = crossover_misprediction_rate(costs)
        assert crossover == pytest.approx(2 / 30)

    def test_paper_examples(self):
        costs = PredicationCosts()
        # 9% misprediction: predicated code wins (paper Section 2.1.1).
        assert should_predicate(costs, taken_rate=0.5, misprediction_rate=0.09)
        # 4% misprediction: branch code wins.
        assert not should_predicate(costs, taken_rate=0.5, misprediction_rate=0.04)

    def test_branch_cost_formula(self):
        costs = PredicationCosts(misp_penalty=10, exec_taken=2, exec_not_taken=4,
                                 exec_predicated=5)
        cost = branch_cost(costs, taken_rate=0.25, misprediction_rate=0.1)
        assert cost == pytest.approx(2 * 0.25 + 4 * 0.75 + 10 * 0.1)

    def test_predicated_cost_constant(self):
        costs = PredicationCosts(exec_predicated=7)
        assert predicated_cost(costs) == 7
        for rate in (0.0, 0.1, 0.5):
            assert predicated_cost(costs) == 7  # Independent of rates.

    def test_asymmetric_paths_shift_crossover(self):
        costs = PredicationCosts(exec_taken=1, exec_not_taken=9, exec_predicated=6)
        # Mostly-taken branch: base cost lower, crossover higher.
        taken_heavy = crossover_misprediction_rate(costs, taken_rate=0.9)
        not_taken_heavy = crossover_misprediction_rate(costs, taken_rate=0.1)
        assert taken_heavy > not_taken_heavy

    def test_crossover_zero_when_predication_dominates(self):
        costs = PredicationCosts(exec_taken=5, exec_not_taken=5, exec_predicated=4)
        assert crossover_misprediction_rate(costs) == 0.0

    def test_cost_sweep_rows(self):
        rows = cost_sweep(PredicationCosts(), [0.0, 0.1])
        assert rows[0][1] == pytest.approx(3.0)
        assert rows[1][1] == pytest.approx(6.0)
        assert rows[0][2] == rows[1][2] == 5.0

    def test_probability_validation(self):
        with pytest.raises(ValueError):
            branch_cost(PredicationCosts(), taken_rate=1.5, misprediction_rate=0.0)
        with pytest.raises(ValueError):
            branch_cost(PredicationCosts(), taken_rate=0.5, misprediction_rate=-0.1)

    def test_cost_validation(self):
        with pytest.raises(ValueError):
            PredicationCosts(misp_penalty=0)
        with pytest.raises(ValueError):
            PredicationCosts(exec_taken=-1)


class TestAdvisor:
    def advisor(self, guard_band=0.03):
        return PredicationAdvisor(guard_band=guard_band)

    def profile(self, misprediction_rate, input_dependent, site=0):
        return BranchProfileSummary(
            site_id=site,
            taken_rate=0.5,
            misprediction_rate=misprediction_rate,
            input_dependent=input_dependent,
        )

    def test_easy_branch_stays_branch(self):
        decision = self.advisor().decide(self.profile(0.01, input_dependent=False))
        assert decision is AdvisorDecision.KEEP_BRANCH

    def test_hard_branch_predicated(self):
        decision = self.advisor().decide(self.profile(0.20, input_dependent=False))
        assert decision is AdvisorDecision.PREDICATE

    def test_input_dependent_near_crossover_gets_wish_branch(self):
        # Crossover is ~6.7%; 7% is within the 3% guard band.
        decision = self.advisor().decide(self.profile(0.07, input_dependent=True))
        assert decision is AdvisorDecision.WISH_BRANCH

    def test_input_dependent_far_from_crossover_decided_statically(self):
        decision = self.advisor().decide(self.profile(0.30, input_dependent=True))
        assert decision is AdvisorDecision.PREDICATE
        decision = self.advisor().decide(self.profile(0.005, input_dependent=True))
        assert decision is AdvisorDecision.KEEP_BRANCH

    def test_input_independent_near_crossover_decided_statically(self):
        # The paper: correctly identified input-independent -> safe to
        # predicate even near the crossover.
        decision = self.advisor().decide(self.profile(0.08, input_dependent=False))
        assert decision is AdvisorDecision.PREDICATE

    def test_decide_all(self):
        profiles = [self.profile(0.2, False, site=1), self.profile(0.07, True, site=2)]
        decisions = self.advisor().decide_all(profiles)
        assert decisions == {1: AdvisorDecision.PREDICATE, 2: AdvisorDecision.WISH_BRANCH}

    def test_negative_guard_band_rejected(self):
        with pytest.raises(ValueError):
            PredicationAdvisor(guard_band=-0.1)
