"""Tests for the markdown report generator and remaining small surfaces."""

import pytest

from repro.analysis.reportgen import generate_report, write_report
from repro.errors import (
    ExperimentError,
    FuelExhausted,
    LexError,
    MinicError,
    ParseError,
    ReproError,
    SemanticError,
    TraceError,
    VMError,
    VMRuntimeError,
)
from repro.vm.inputs import InputSet


class TestReportGenerator:
    @pytest.fixture(scope="class")
    def report_text(self, tmp_path_factory):
        from repro.core.experiment import ExperimentRunner, SuiteConfig

        runner = ExperimentRunner(
            SuiteConfig(scale=0.03, cache_dir=tmp_path_factory.mktemp("rg"))
        )
        return generate_report(runner, include_whatif=True,
                               whatif_workloads=("vortexish",))

    def test_contains_every_section(self, report_text):
        for heading in ("Figure 2", "Figure 3", "Figure 4", "Figure 5",
                        "Table 1", "Table 2", "Figure 8", "Figure 10",
                        "Figure 11", "Figure 12", "Figure 13", "Figure 14",
                        "Figure 15", "Table 4", "what-if"):
            assert heading in report_text, f"missing section {heading}"

    def test_all_workloads_appear(self, report_text):
        from repro.workloads import workload_names

        for name in workload_names():
            assert name in report_text

    def test_write_report(self, tmp_path):
        from repro.core.experiment import ExperimentRunner, SuiteConfig

        runner = ExperimentRunner(
            SuiteConfig(scale=0.03, cache_dir=tmp_path / "cache")
        )
        out = write_report(runner, tmp_path / "sub" / "r.md", include_whatif=False)
        assert out.exists()
        assert "what-if" not in out.read_text()


class TestErrorsHierarchy:
    def test_all_derive_from_repro_error(self):
        for exc_type in (MinicError, LexError, ParseError, SemanticError,
                         VMError, VMRuntimeError, FuelExhausted, TraceError,
                         ExperimentError):
            assert issubclass(exc_type, ReproError)

    def test_minic_error_location_formatting(self):
        error = ParseError("bad token", line=3, column=7)
        assert "line 3:7" in str(error)
        assert error.line == 3 and error.column == 7

    def test_minic_error_without_location(self):
        error = SemanticError("no main")
        assert "line" not in str(error)

    def test_fuel_exhausted_carries_count(self):
        error = FuelExhausted(12345)
        assert error.executed == 12345
        assert "12345" in str(error)


class TestInputSet:
    def test_make_coerces_iterables(self):
        input_set = InputSet.make("x", data=(str(i) for i in range(3)), args=[1.0])
        assert input_set.data == (0, 1, 2)
        assert input_set.args == (1,)

    def test_len_is_data_length(self):
        assert len(InputSet.make("x", data=[1, 2, 3])) == 3

    def test_describe(self):
        text = InputSet.make("ref", data=[1], args=[9]).describe()
        assert "ref" in text and "1 data words" in text

    def test_frozen(self):
        input_set = InputSet.make("x")
        with pytest.raises(AttributeError):
            input_set.name = "y"
