"""Differential test harness: independent implementations must agree exactly.

The suite has three pairs of independently implemented paths that are
required to be interchangeable:

* the branch-at-a-time reference replay
  (:func:`repro.predictors.simulate.simulate_reference`) vs the vectorized
  segmented-scan replay (:mod:`repro.predictors.vectorized`) — for every
  predictor kind in the zoo, not just bimodal/gshare;
* the online profiler (:class:`TwoDProfiler`, one ``record`` per branch)
  vs the batched ``record_batch`` path vs the offline bincount profiler
  (:func:`profile_trace`);
* ``simulate()``'s dispatch, which must pick the fast path only when it
  is exact, and must *fail loudly* instead of silently falling back when
  ``REPRO_REQUIRE_VECTORIZED`` is set.

Each replay pair is driven with seeded traces from several families
(mixed-random, bursty, phase-shifted, single-site, alias-heavy) and the
results are compared *exactly*: the per-branch correctness stream, the
per-site counts and accuracies, and the complete end-of-run predictor
state (:meth:`Predictor.state_dict`), so ``reset=False`` chains stay in
lockstep too.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.profiler2d import ProfilerConfig, TwoDProfiler, profile_trace
from repro.errors import ExperimentError
from repro.predictors import (
    Bimodal,
    GAg,
    Gshare,
    LocalTwoLevel,
    LoopPredictor,
    Perceptron,
    Tage,
    Tournament,
    simulate,
    simulate_reference,
)
from repro.predictors.vectorized import try_simulate_vectorized
from repro.trace.trace import BranchTrace
from repro.trace.synthetic import (
    SiteSpec,
    bernoulli_site,
    interleave_sites,
    loop_site,
    pattern_site,
)

# ----------------------------------------------------------------------
# Trace families
# ----------------------------------------------------------------------


def random_trace(seed: int) -> BranchTrace:
    """A deterministic random trace mixing the site shapes real code has."""
    rng = np.random.default_rng(seed)
    num_sites = int(rng.integers(3, 32))
    streams: dict[int, np.ndarray] = {}
    for site in range(num_sites):
        kind = int(rng.integers(0, 4))
        n = int(rng.integers(20, 320))
        if kind == 0:
            spec = SiteSpec.stationary(float(rng.uniform(0.02, 0.98)))
            streams[site] = bernoulli_site(n, spec, seed * 1009 + site)
        elif kind == 1:
            spec = SiteSpec.two_phase(
                float(rng.uniform(0.05, 0.5)), float(rng.uniform(0.5, 0.95))
            )
            streams[site] = bernoulli_site(n, spec, seed * 1009 + site)
        elif kind == 2:
            pattern = "".join(rng.choice(["T", "N"], size=int(rng.integers(2, 7))))
            streams[site] = pattern_site(pattern, max(1, n // len(pattern)))
        else:
            counts = [int(c) for c in rng.integers(1, 9, size=max(1, n // 4))]
            streams[site] = loop_site(counts)
        if streams[site].size == 0:
            streams[site] = np.ones(1, dtype=np.uint8)
    return interleave_sites(streams, seed=seed)


def bursty_trace(seed: int) -> BranchTrace:
    """Long same-direction runs: loop predictor and RLE-edge territory."""
    rng = np.random.default_rng(seed)
    num_sites = int(rng.integers(3, 10))
    streams: dict[int, np.ndarray] = {}
    for site in range(num_sites):
        runs = []
        direction = int(rng.integers(0, 2))
        total = 0
        while total < 300:
            length = int(rng.integers(1, 120))
            runs.append(np.full(length, direction, dtype=np.uint8))
            direction ^= 1
            total += length
        streams[site] = np.concatenate(runs)
    return interleave_sites(streams, seed=seed)


def phase_shifted_trace(seed: int) -> BranchTrace:
    """Every site flips bias mid-stream (the paper's phased behavior)."""
    rng = np.random.default_rng(seed)
    num_sites = int(rng.integers(3, 12))
    streams = {
        site: bernoulli_site(
            int(rng.integers(150, 500)),
            SiteSpec.two_phase(
                float(rng.uniform(0.0, 0.3)), float(rng.uniform(0.7, 1.0))
            ),
            seed * 31 + site,
        )
        for site in range(num_sites)
    }
    return interleave_sites(streams, seed=seed)


def single_site_trace(seed: int) -> BranchTrace:
    """One hot site among many cold ones: degenerate segment layouts."""
    rng = np.random.default_rng(seed)
    num_sites = int(rng.integers(2, 24))
    site = int(rng.integers(0, num_sites))
    n = int(rng.integers(300, 1200))
    outcomes = (rng.random(n) < float(rng.uniform(0.1, 0.9))).astype(np.uint8)
    return BranchTrace(
        program="<family>",
        input_name=f"single-site-{seed}",
        num_sites=num_sites,
        sites=np.full(n, site, dtype=np.int32),
        outcomes=outcomes,
    )


def alias_heavy_trace(seed: int) -> BranchTrace:
    """Far more sites than tiny tables have entries: index collisions."""
    rng = np.random.default_rng(seed)
    num_sites = int(rng.integers(40, 96))
    n = int(rng.integers(1200, 2600))
    sites = rng.integers(0, num_sites, size=n).astype(np.int32)
    biases = rng.uniform(0.05, 0.95, size=num_sites)
    outcomes = (rng.random(n) < biases[sites]).astype(np.uint8)
    return BranchTrace(
        program="<family>",
        input_name=f"alias-heavy-{seed}",
        num_sites=num_sites,
        sites=sites,
        outcomes=outcomes,
    )


TRACE_FAMILIES = {
    "random": random_trace,
    "bursty": bursty_trace,
    "phase-shifted": phase_shifted_trace,
    "single-site": single_site_trace,
    "alias-heavy": alias_heavy_trace,
}


# ----------------------------------------------------------------------
# Predictor zoo
# ----------------------------------------------------------------------

#: Every kind with a vectorized kernel, in a tiny (alias-prone) and a
#: realistic configuration.  Tiny tables are where index bugs hide.
PREDICTOR_CONFIGS = [
    ("bimodal-tiny", lambda: Bimodal(table_bits=2)),
    ("bimodal-paper", lambda: Bimodal()),
    ("gshare-tiny", lambda: Gshare(history_bits=3)),
    ("gshare-wide-table", lambda: Gshare(history_bits=4, table_bits=6)),
    ("gshare-paper", lambda: Gshare(history_bits=14)),
    ("gag-tiny", lambda: GAg(history_bits=4)),
    ("gag", lambda: GAg(history_bits=12)),
    ("local-tiny", lambda: LocalTwoLevel(history_bits=3, num_histories=4)),
    ("local", lambda: LocalTwoLevel(history_bits=10, num_histories=64)),
    ("tournament-tiny", lambda: Tournament(history_bits=3, chooser_bits=4)),
    ("tournament", lambda: Tournament(history_bits=8, chooser_bits=8)),
    ("loop-tiny", lambda: LoopPredictor(num_entries=8)),
    ("loop", lambda: LoopPredictor(num_entries=64, confidence_threshold=3)),
    ("perceptron-tiny", lambda: Perceptron(num_entries=16, history_bits=8)),
    ("perceptron-paper", lambda: Perceptron()),
    ("tage-tiny", lambda: Tage(num_tables=3, table_bits=4, tag_bits=5,
                               min_history=2, max_history=12)),
    ("tage", lambda: Tage()),
]

_CONFIG_IDS = [name for name, _ in PREDICTOR_CONFIGS]


def _assert_state_equal(ref_state, vec_state, path: str = "state") -> None:
    """Recursive exact equality over state_dict values (arrays included)."""
    assert type(ref_state) is type(vec_state), f"{path}: type mismatch"
    if isinstance(ref_state, dict):
        assert ref_state.keys() == vec_state.keys(), f"{path}: key mismatch"
        for key in ref_state:
            _assert_state_equal(ref_state[key], vec_state[key], f"{path}.{key}")
    elif isinstance(ref_state, (list, tuple)):
        assert len(ref_state) == len(vec_state), f"{path}: length mismatch"
        for i, (a, b) in enumerate(zip(ref_state, vec_state)):
            _assert_state_equal(a, b, f"{path}[{i}]")
    elif isinstance(ref_state, np.ndarray):
        assert ref_state.dtype == vec_state.dtype, f"{path}: dtype mismatch"
        np.testing.assert_array_equal(ref_state, vec_state, err_msg=path)
    else:
        assert ref_state == vec_state, f"{path}: {ref_state!r} != {vec_state!r}"


def _assert_sim_equal(ref, vec) -> None:
    np.testing.assert_array_equal(ref.correct, vec.correct)
    np.testing.assert_array_equal(ref.exec_counts, vec.exec_counts)
    np.testing.assert_array_equal(ref.correct_counts, vec.correct_counts)
    assert ref.predictor_name == vec.predictor_name
    assert ref.num_sites == vec.num_sites
    # Exact counts imply exact accuracies, but assert the derived view
    # too: it is the API the profilers and experiments consume.
    assert ref.site_accuracies() == vec.site_accuracies()


# ----------------------------------------------------------------------
# Reference replay vs vectorized replay
# ----------------------------------------------------------------------


@pytest.mark.parametrize("family", sorted(TRACE_FAMILIES), ids=str)
@pytest.mark.parametrize("config_index", range(len(PREDICTOR_CONFIGS)), ids=_CONFIG_IDS)
def test_vectorized_matches_reference(config_index: int, family: str):
    name, factory = PREDICTOR_CONFIGS[config_index]
    make_trace = TRACE_FAMILIES[family]
    for seed in range(3):
        trace = make_trace(config_index * 1000 + seed)
        ref_pred, vec_pred = factory(), factory()
        ref = simulate_reference(ref_pred, trace)
        vec = try_simulate_vectorized(vec_pred, trace)
        assert vec is not None, f"{name} should take the vectorized path"
        _assert_sim_equal(ref, vec)
        # End-of-run predictor state must match so chained replays agree.
        _assert_state_equal(
            ref_pred.state_dict(), vec_pred.state_dict(), f"{name}/seed{seed}"
        )


@pytest.mark.parametrize("config_index", range(len(PREDICTOR_CONFIGS)), ids=_CONFIG_IDS)
def test_vectorized_matches_reference_chained(config_index: int):
    """reset=False chaining across trace fragments stays exact per kind."""
    name, factory = PREDICTOR_CONFIGS[config_index]
    for seed in (901, 902):
        trace = random_trace(seed)
        cut = len(trace) // 3
        parts = [(0, cut), (cut, 2 * cut), (2 * cut, len(trace))]
        ref_pred, vec_pred = factory(), factory()
        ref_pred.reset()
        vec_pred.reset()
        for start, stop in parts:
            fragment = trace.slice_view(start, stop)
            ref = simulate_reference(ref_pred, fragment, reset=False)
            vec = try_simulate_vectorized(vec_pred, fragment, reset=False)
            assert vec is not None, f"{name} refused a warm-start fragment"
            _assert_sim_equal(ref, vec)
            _assert_state_equal(
                ref_pred.state_dict(), vec_pred.state_dict(),
                f"{name}/seed{seed}/{start}:{stop}",
            )


def test_vectorized_adversarial_streams():
    """Saturating and alternating streams exercise the constant-retirement
    optimization's edge cases (instant collapse vs never collapsing)."""
    n = 4000
    for stream_name, outcomes in [
        ("all-taken", np.ones(n, dtype=np.uint8)),
        ("all-not-taken", np.zeros(n, dtype=np.uint8)),
        ("alternating", (np.arange(n) & 1).astype(np.uint8)),
    ]:
        sites = (np.arange(n) % 7).astype(np.int32)
        trace = BranchTrace(
            program="<adversarial>", input_name=stream_name, num_sites=7,
            sites=sites, outcomes=outcomes,
        )
        for name, factory in PREDICTOR_CONFIGS:
            ref_pred, vec_pred = factory(), factory()
            ref = simulate_reference(ref_pred, trace)
            vec = try_simulate_vectorized(vec_pred, trace)
            assert vec is not None, f"{name} on {stream_name}"
            _assert_sim_equal(ref, vec)
            _assert_state_equal(
                ref_pred.state_dict(), vec_pred.state_dict(),
                f"{name}/{stream_name}",
            )


def test_vectorized_empty_trace():
    trace = BranchTrace(
        program="<empty>", input_name="none", num_sites=4,
        sites=np.zeros(0, dtype=np.int32), outcomes=np.zeros(0, dtype=np.uint8),
    )
    for name, factory in PREDICTOR_CONFIGS:
        ref_pred, vec_pred = factory(), factory()
        ref = simulate_reference(ref_pred, trace)
        vec = try_simulate_vectorized(vec_pred, trace)
        assert vec is not None, name
        _assert_sim_equal(ref, vec)
        _assert_state_equal(ref_pred.state_dict(), vec_pred.state_dict(), name)


# ----------------------------------------------------------------------
# Dispatch exactness and the REPRO_REQUIRE_VECTORIZED contract
# ----------------------------------------------------------------------


def test_simulate_dispatch_only_when_exact():
    """simulate() takes the fast path only for exact stock types."""

    class TweakedBimodal(Bimodal):
        """A subclass may change the update rule; must NOT be vectorized."""

    class TweakedPerceptron(Perceptron):
        """Same story for every other kind with a kernel."""

    trace = random_trace(77)
    assert try_simulate_vectorized(TweakedBimodal(), trace) is None
    assert (
        try_simulate_vectorized(TweakedPerceptron(num_entries=16, history_bits=8), trace)
        is None
    )

    # Dispatch agrees with both explicit paths.
    for factory in (lambda: Gshare(history_bits=6),
                    lambda: Perceptron(num_entries=16, history_bits=8)):
        auto = simulate(factory(), trace)
        forced_ref = simulate(factory(), trace, vectorize=False)
        _assert_sim_equal(forced_ref, auto)


def test_require_vectorized_env(monkeypatch):
    trace = random_trace(42)

    # "1" requires every default kind; all of them satisfy it.
    monkeypatch.setenv("REPRO_REQUIRE_VECTORIZED", "1")
    for name, factory in PREDICTOR_CONFIGS:
        simulate(factory(), trace)

    # Subclasses are not stock kinds: the requirement does not apply.
    class TweakedBimodal(Bimodal):
        pass

    simulate(TweakedBimodal(), trace)

    # Force the kernel to refuse: required kinds must now fail loudly.
    monkeypatch.setattr(
        "repro.predictors.vectorized.try_simulate_vectorized",
        lambda predictor, trace, reset=True: None,
    )
    with pytest.raises(ExperimentError, match="fell back"):
        simulate(Gshare(history_bits=6), trace)
    # ... but TAGE is only requirable by name, not required by "1".
    simulate(Tage(num_tables=2, table_bits=4), trace)

    # A comma list requires exactly the named kinds.
    monkeypatch.setenv("REPRO_REQUIRE_VECTORIZED", "gshare,tage")
    simulate(Bimodal(table_bits=4), trace)
    with pytest.raises(ExperimentError, match="fell back"):
        simulate(Gshare(history_bits=6), trace)
    with pytest.raises(ExperimentError, match="fell back"):
        simulate(Tage(num_tables=2, table_bits=4), trace)

    # Unknown kind names are a configuration error, not a silent no-op.
    monkeypatch.setenv("REPRO_REQUIRE_VECTORIZED", "nosuchkind")
    with pytest.raises(ExperimentError, match="unknown kinds"):
        simulate(Gshare(history_bits=6), trace)

    # "0"/unset requires nothing.
    monkeypatch.setenv("REPRO_REQUIRE_VECTORIZED", "0")
    simulate(Gshare(history_bits=6), trace)
    monkeypatch.delenv("REPRO_REQUIRE_VECTORIZED")
    simulate(Gshare(history_bits=6), trace)


# ----------------------------------------------------------------------
# Online profiler vs batched profiler vs offline profiler
# ----------------------------------------------------------------------

PROFILER_CONFIGS = [
    ProfilerConfig(slice_size=100),
    ProfilerConfig(slice_size=230),
    ProfilerConfig(slice_size=100, use_fir=False),
]


@pytest.mark.parametrize("config_index", range(len(PROFILER_CONFIGS)))
@pytest.mark.parametrize("seed_base", [0, 10, 20])
def test_online_matches_offline(config_index: int, seed_base: int):
    config = PROFILER_CONFIGS[config_index]
    for seed in range(seed_base, seed_base + 10):
        trace = random_trace(5000 + seed)
        sim = simulate(Gshare(history_bits=8), trace)

        online = TwoDProfiler(trace.num_sites, config)
        for site, correct in zip(trace.sites.tolist(), sim.correct.tolist()):
            online.record(site, correct)
        online_report = online.finish()

        offline_report = profile_trace(trace, simulation=sim, config=config)

        assert online_report.overall_accuracy == pytest.approx(
            offline_report.overall_accuracy, abs=1e-12
        )
        for site in range(trace.num_sites):
            a = online_report.stats[site]
            b = offline_report.stats[site]
            assert a.N == b.N, f"seed {seed} site {site}"
            assert a.NPAM == b.NPAM, f"seed {seed} site {site}"
            assert a.has_lpa == b.has_lpa, f"seed {seed} site {site}"
            assert a.SPA == pytest.approx(b.SPA, abs=1e-12), f"seed {seed} site {site}"
            assert a.SSPA == pytest.approx(b.SSPA, abs=1e-12), f"seed {seed} site {site}"
            assert a.LPA == pytest.approx(b.LPA, abs=1e-12), f"seed {seed} site {site}"

        assert online_report.profiled_sites() == offline_report.profiled_sites()
        assert (
            online_report.input_dependent_sites()
            == offline_report.input_dependent_sites()
        ), f"seed {seed}: verdict sets diverge"


def test_record_batch_matches_record_loop():
    """The whole-slice bincount fast path is bit-identical to record()."""
    for seed, slice_size in [(321, 97), (322, 100), (323, 64)]:
        trace = random_trace(seed)
        sim = simulate(Gshare(history_bits=8), trace)
        config = ProfilerConfig(slice_size=slice_size)

        looped = TwoDProfiler(trace.num_sites, config)
        for site, correct in zip(trace.sites.tolist(), sim.correct.tolist()):
            looped.record(site, correct)

        batched = TwoDProfiler(trace.num_sites, config)
        # Irregular batch sizes: partial-slice prefixes, spans of several
        # whole slices, and tails all get exercised.
        cuts = [0, 1, 8, 8 + slice_size * 3 + 5, len(trace)]
        cuts = sorted(set(min(c, len(trace)) for c in cuts))
        for start, stop in zip(cuts, cuts[1:]):
            batched.record_batch(trace.sites[start:stop], sim.correct[start:stop])

        a, b = looped.state_dict(), batched.state_dict()
        assert a.keys() == b.keys()
        for key in a:
            np.testing.assert_array_equal(a[key], b[key], err_msg=key)


def test_three_way_agreement_on_real_workload(tiny_runner):
    """Reference sim, vectorized sim and both profilers agree end to end on
    a real compiled-workload trace, not just synthetic streams."""
    trace = tiny_runner.trace("gzipish", "train")
    ref = simulate(Gshare(history_bits=14), trace, vectorize=False)
    vec = simulate(Gshare(history_bits=14), trace)
    _assert_sim_equal(ref, vec)

    config = ProfilerConfig(slice_size=max(500, len(trace) // 40))
    online = TwoDProfiler(trace.num_sites, config)
    for site, correct in zip(trace.sites.tolist(), vec.correct.tolist()):
        online.record(site, correct)
    online_report = online.finish()
    offline_report = profile_trace(trace, simulation=vec, config=config)
    assert online_report.input_dependent_sites() == offline_report.input_dependent_sites()
    assert online_report.profiled_sites() == offline_report.profiled_sites()
