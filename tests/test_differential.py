"""Differential test harness: independent implementations must agree exactly.

The suite has three pairs of independently implemented paths that are
required to be interchangeable:

* the branch-at-a-time reference replay
  (:func:`repro.predictors.simulate.simulate_reference`) vs the vectorized
  segmented-scan replay (:mod:`repro.predictors.vectorized`);
* the online profiler (:class:`TwoDProfiler`, one ``record`` per branch)
  vs the offline bincount profiler (:func:`profile_trace`);
* ``simulate()``'s dispatch, which must pick the fast path only when it
  is exact.

Each pair is driven with ~200 seeded random traces mixing stationary,
phased, patterned and loop-shaped branch sites, and the results are
compared *exactly* (counts, verdict sets, end-of-run predictor state) or
to float64 round-off (accumulated statistics).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.profiler2d import ProfilerConfig, TwoDProfiler, profile_trace
from repro.predictors import Bimodal, Gshare, Perceptron, simulate, simulate_reference
from repro.predictors.vectorized import try_simulate_vectorized
from repro.trace.trace import BranchTrace
from repro.trace.synthetic import (
    SiteSpec,
    bernoulli_site,
    interleave_sites,
    loop_site,
    pattern_site,
)

# ----------------------------------------------------------------------
# Random trace generation
# ----------------------------------------------------------------------


def random_trace(seed: int) -> BranchTrace:
    """A deterministic random trace mixing the site shapes real code has."""
    rng = np.random.default_rng(seed)
    num_sites = int(rng.integers(3, 32))
    streams: dict[int, np.ndarray] = {}
    for site in range(num_sites):
        kind = int(rng.integers(0, 4))
        n = int(rng.integers(20, 320))
        if kind == 0:
            spec = SiteSpec.stationary(float(rng.uniform(0.02, 0.98)))
            streams[site] = bernoulli_site(n, spec, seed * 1009 + site)
        elif kind == 1:
            spec = SiteSpec.two_phase(
                float(rng.uniform(0.05, 0.5)), float(rng.uniform(0.5, 0.95))
            )
            streams[site] = bernoulli_site(n, spec, seed * 1009 + site)
        elif kind == 2:
            pattern = "".join(rng.choice(["T", "N"], size=int(rng.integers(2, 7))))
            streams[site] = pattern_site(pattern, max(1, n // len(pattern)))
        else:
            counts = [int(c) for c in rng.integers(1, 9, size=max(1, n // 4))]
            streams[site] = loop_site(counts)
        if streams[site].size == 0:
            streams[site] = np.ones(1, dtype=np.uint8)
    return interleave_sites(streams, seed=seed)


# ----------------------------------------------------------------------
# Reference replay vs vectorized replay
# ----------------------------------------------------------------------

#: Includes heavily aliased tables (2-bit bimodal, 3-bit gshare) because
#: aliasing is exactly where an index-computation bug would hide.
PREDICTOR_CONFIGS = [
    ("bimodal-tiny", lambda: Bimodal(table_bits=2)),
    ("bimodal-paper", lambda: Bimodal()),
    ("gshare-tiny", lambda: Gshare(history_bits=3)),
    ("gshare-wide-table", lambda: Gshare(history_bits=4, table_bits=6)),
    ("gshare-paper", lambda: Gshare(history_bits=14)),
]

#: 5 predictor configs x 5 batches x 8 seeds = 200 distinct random traces.
SEED_BATCHES = [tuple(range(b * 8, (b + 1) * 8)) for b in range(5)]


def _assert_sim_equal(ref, vec) -> None:
    np.testing.assert_array_equal(ref.correct, vec.correct)
    np.testing.assert_array_equal(ref.exec_counts, vec.exec_counts)
    np.testing.assert_array_equal(ref.correct_counts, vec.correct_counts)
    assert ref.predictor_name == vec.predictor_name
    assert ref.num_sites == vec.num_sites


@pytest.mark.parametrize("config_index,name", [(i, name) for i, (name, _) in enumerate(PREDICTOR_CONFIGS)])
@pytest.mark.parametrize("batch", SEED_BATCHES, ids=lambda b: f"seeds{b[0]}-{b[-1]}")
def test_vectorized_matches_reference(config_index: int, name: str, batch: tuple[int, ...]):
    _, factory = PREDICTOR_CONFIGS[config_index]
    for seed in batch:
        trace = random_trace(config_index * 1000 + seed)
        ref_pred, vec_pred = factory(), factory()
        ref = simulate_reference(ref_pred, trace)
        vec = try_simulate_vectorized(vec_pred, trace)
        assert vec is not None, f"{name} should take the vectorized path"
        _assert_sim_equal(ref, vec)
        # End-of-run predictor state must match so chained replays agree.
        assert ref_pred.table == vec_pred.table, f"seed {seed}"
        if isinstance(ref_pred, Gshare):
            assert ref_pred.history == vec_pred.history, f"seed {seed}"


@pytest.mark.parametrize("name,factory", PREDICTOR_CONFIGS)
def test_vectorized_matches_reference_chained(name: str, factory):
    """reset=False chaining across trace fragments stays exact."""
    for seed in (901, 902, 903):
        trace = random_trace(seed)
        cut = len(trace) // 3
        parts = [(0, cut), (cut, 2 * cut), (2 * cut, len(trace))]
        ref_pred, vec_pred = factory(), factory()
        ref_pred.reset()
        vec_pred.reset()
        for start, stop in parts:
            fragment = trace.slice_view(start, stop)
            ref = simulate_reference(ref_pred, fragment, reset=False)
            vec = try_simulate_vectorized(vec_pred, fragment, reset=False)
            assert vec is not None
            _assert_sim_equal(ref, vec)
        assert ref_pred.table == vec_pred.table
        if isinstance(ref_pred, Gshare):
            assert ref_pred.history == vec_pred.history


def test_vectorized_adversarial_streams():
    """Saturating and alternating streams exercise the constant-retirement
    optimization's edge cases (instant collapse vs never collapsing)."""
    n = 4000
    for name, outcomes in [
        ("all-taken", np.ones(n, dtype=np.uint8)),
        ("all-not-taken", np.zeros(n, dtype=np.uint8)),
        ("alternating", (np.arange(n) & 1).astype(np.uint8)),
    ]:
        sites = (np.arange(n) % 7).astype(np.int32)
        trace = BranchTrace(
            program="<adversarial>", input_name=name, num_sites=7,
            sites=sites, outcomes=outcomes,
        )
        for _, factory in PREDICTOR_CONFIGS:
            ref_pred, vec_pred = factory(), factory()
            ref = simulate_reference(ref_pred, trace)
            vec = try_simulate_vectorized(vec_pred, trace)
            assert vec is not None
            _assert_sim_equal(ref, vec)
            assert ref_pred.table == vec_pred.table


def test_vectorized_empty_trace():
    trace = BranchTrace(
        program="<empty>", input_name="none", num_sites=4,
        sites=np.zeros(0, dtype=np.int32), outcomes=np.zeros(0, dtype=np.uint8),
    )
    for _, factory in PREDICTOR_CONFIGS:
        ref = simulate_reference(factory(), trace)
        vec = try_simulate_vectorized(factory(), trace)
        assert vec is not None
        _assert_sim_equal(ref, vec)


def test_simulate_dispatch_only_when_exact():
    """simulate() takes the fast path for plain Bimodal/Gshare only."""

    class TweakedBimodal(Bimodal):
        """A subclass may change the update rule; must NOT be vectorized."""

    trace = random_trace(77)
    assert try_simulate_vectorized(TweakedBimodal(), trace) is None
    assert try_simulate_vectorized(Perceptron(num_entries=16, history_bits=8), trace) is None

    # Dispatch agrees with both explicit paths.
    auto = simulate(Gshare(history_bits=6), trace)
    forced_ref = simulate(Gshare(history_bits=6), trace, vectorize=False)
    _assert_sim_equal(forced_ref, auto)


# ----------------------------------------------------------------------
# Online profiler vs offline profiler
# ----------------------------------------------------------------------

PROFILER_CONFIGS = [
    ProfilerConfig(slice_size=100),
    ProfilerConfig(slice_size=230),
    ProfilerConfig(slice_size=100, use_fir=False),
]


@pytest.mark.parametrize("config_index", range(len(PROFILER_CONFIGS)))
@pytest.mark.parametrize("seed_base", [0, 10, 20])
def test_online_matches_offline(config_index: int, seed_base: int):
    config = PROFILER_CONFIGS[config_index]
    for seed in range(seed_base, seed_base + 10):
        trace = random_trace(5000 + seed)
        sim = simulate(Gshare(history_bits=8), trace)

        online = TwoDProfiler(trace.num_sites, config)
        for site, correct in zip(trace.sites.tolist(), sim.correct.tolist()):
            online.record(site, correct)
        online_report = online.finish()

        offline_report = profile_trace(trace, simulation=sim, config=config)

        assert online_report.overall_accuracy == pytest.approx(
            offline_report.overall_accuracy, abs=1e-12
        )
        for site in range(trace.num_sites):
            a = online_report.stats[site]
            b = offline_report.stats[site]
            assert a.N == b.N, f"seed {seed} site {site}"
            assert a.NPAM == b.NPAM, f"seed {seed} site {site}"
            assert a.has_lpa == b.has_lpa, f"seed {seed} site {site}"
            assert a.SPA == pytest.approx(b.SPA, abs=1e-12), f"seed {seed} site {site}"
            assert a.SSPA == pytest.approx(b.SSPA, abs=1e-12), f"seed {seed} site {site}"
            assert a.LPA == pytest.approx(b.LPA, abs=1e-12), f"seed {seed} site {site}"

        assert online_report.profiled_sites() == offline_report.profiled_sites()
        assert (
            online_report.input_dependent_sites()
            == offline_report.input_dependent_sites()
        ), f"seed {seed}: verdict sets diverge"


def test_three_way_agreement_on_real_workload(tiny_runner):
    """Reference sim, vectorized sim and both profilers agree end to end on
    a real compiled-workload trace, not just synthetic streams."""
    trace = tiny_runner.trace("gzipish", "train")
    ref = simulate(Gshare(history_bits=14), trace, vectorize=False)
    vec = simulate(Gshare(history_bits=14), trace)
    _assert_sim_equal(ref, vec)

    config = ProfilerConfig(slice_size=max(500, len(trace) // 40))
    online = TwoDProfiler(trace.num_sites, config)
    for site, correct in zip(trace.sites.tolist(), vec.correct.tolist()):
        online.record(site, correct)
    online_report = online.finish()
    offline_report = profile_trace(trace, simulation=vec, config=config)
    assert online_report.input_dependent_sites() == offline_report.input_dependent_sites()
    assert online_report.profiled_sites() == offline_report.profiled_sites()
