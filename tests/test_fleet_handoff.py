"""Chaos tests for the fleet: real processes, real SIGKILL.

These spawn actual ``repro-2dprof serve`` shard subprocesses through
:class:`~repro.fleet.harness.FleetHarness` and exercise the acceptance
contract end to end:

* **kill -9 handoff** — SIGKILL the shard that owns a mid-stream
  session, resume *through the router*, land on a different shard, and
  produce a report bit-identical to offline ``profile_trace`` over the
  unbroken stream;
* **rolling restart** — drain-and-replace every shard one at a time
  while sessions are parked; every one of them resumes exactly;
* **loadgen under failover** — concurrent multiplexed streams survive a
  shard kill via retriable errors + resume, with zero verify failures.

All ``slow``-marked (seconds each): deselect with ``-m 'not slow'``.
"""

from __future__ import annotations

import pytest

from repro.core.profiler2d import ProfilerConfig, profile_trace
from repro.fleet import FleetHarness
from repro.fleet.loadgen import run_loadgen
from repro.predictors import make_predictor, simulate
from repro.service.client import stream_simulation
from repro.service.protocol import serialize_report
from repro.trace.synthetic import phased_trace

pytestmark = pytest.mark.slow


@pytest.fixture(scope="module")
def stream_data():
    trace, _stationary, _phased = phased_trace(6, 3, 12_000, seed=7)
    sim = simulate(make_predictor("bimodal"), trace)
    config = ProfilerConfig().resolve(total_branches=len(trace))
    offline = serialize_report(profile_trace(trace, simulation=sim, config=config))
    return trace, sim, config, offline


class TestKillNineHandoff:
    def test_kill9_resume_on_different_shard_bit_identical(self, tmp_path, stream_data):
        trace, sim, config, offline = stream_data
        with FleetHarness(tmp_path / "fleet", num_shards=3) as fleet:
            with fleet.client() as client:
                outcome = stream_simulation(
                    client, "victim", trace.sites, sim.correct, config,
                    batch_size=1000, stop_after=5000, num_sites=trace.num_sites)
                assert not outcome.completed  # checkpointed at 5000
            owner = fleet.owner_of("victim")
            assert owner is not None
            fleet.kill_shard(owner)  # SIGKILL: no drain, no warning

            with fleet.client() as client:
                outcome = stream_simulation(
                    client, "victim", trace.sites, sim.correct, config,
                    batch_size=1000, resume=True, num_sites=trace.num_sites)
                assert outcome.resumed_from == 5000  # nothing past the checkpoint lost
                assert outcome.completed
                new_owner = fleet.owner_of("victim")
                assert new_owner is not None and new_owner != owner
                assert client.query("victim")["report"] == offline
                client.close_session("victim")

    def test_killed_shard_can_be_revived_and_serves_again(self, tmp_path, stream_data):
        trace, sim, config, offline = stream_data
        with FleetHarness(tmp_path / "fleet", num_shards=2) as fleet:
            with fleet.client() as client:
                stream_simulation(client, "run-a", trace.sites, sim.correct,
                                  config, num_sites=trace.num_sites)
                owner = fleet.owner_of("run-a")
            fleet.kill_shard(owner)
            assert fleet.restart_dead() == [owner]
            # The revived shard (same name, new port) serves new sessions.
            with fleet.client() as client:
                status = client.control({"op": "fleet_status"})
                assert all(s["alive"] for s in status["shards"])
                stream_simulation(client, "run-b", trace.sites, sim.correct,
                                  config, num_sites=trace.num_sites)
                assert client.query("run-b")["report"] == offline


class TestRollingRestart:
    def test_rolling_restart_loses_no_session(self, tmp_path, stream_data):
        trace, sim, config, offline = stream_data
        sessions = [f"park-{i}" for i in range(4)]
        with FleetHarness(tmp_path / "fleet", num_shards=3) as fleet:
            with fleet.client() as client:
                for name in sessions:
                    outcome = stream_simulation(
                        client, name, trace.sites, sim.correct, config,
                        batch_size=1000, stop_after=4000,
                        num_sites=trace.num_sites)
                    assert not outcome.completed

            # Drain-and-replace every shard; SIGTERM checkpoints sessions.
            replaced = fleet.rolling_restart()
            assert replaced == ["s0", "s1", "s2"]

            with fleet.client() as client:
                for name in sessions:
                    outcome = stream_simulation(
                        client, name, trace.sites, sim.correct, config,
                        batch_size=1000, resume=True, num_sites=trace.num_sites)
                    assert outcome.resumed_from >= 4000
                    assert client.query(name)["report"] == offline


class TestLoadgenFailover:
    def test_loadgen_survives_shard_kill_with_exact_verify(self, tmp_path):
        import threading
        import time

        with FleetHarness(tmp_path / "fleet", num_shards=3) as fleet:
            box: dict = {}

            def _drive() -> None:
                box["result"] = run_loadgen(
                    fleet.host, fleet.port, streams=60, connections=8,
                    events=6000, batch=250, verify_sample=20, prefix="chaos")

            driver = threading.Thread(target=_drive)
            driver.start()
            # Kill the moment the victim shard owns an *open* session, so
            # the loss is guaranteed to land mid-run, not after it.
            registry = fleet.router.registry
            deadline = time.monotonic() + 15
            while time.monotonic() < deadline:
                if any(e["shard"] == "s1" for e in registry.entries().values()):
                    break
                time.sleep(0.01)
            else:
                pytest.fail("no session ever landed on shard s1")
            fleet.kill_shard("s1")
            driver.join(timeout=120)
            assert not driver.is_alive()

            result = box["result"]
            assert result.failed_streams == 0
            assert result.verify_failures == 0
            assert result.events_total == 60 * 6000
            # The kill must actually have been noticed by somebody.
            assert result.retries > 0
