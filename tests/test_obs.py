"""Tests for the unified observability subsystem (:mod:`repro.obs`).

Covers the tentpole contracts: span nesting and attributes, the disabled
no-op fast path, histogram percentile math, Prometheus exposition,
snapshot merging, the ProcessPool spool round-trip (worker spans land in
the parent trace), the ServiceMetrics backward-compat shim, and the CLI
``--trace`` / ``--metrics-json`` / ``stats`` surfaces.
"""

from __future__ import annotations

import json
import math
import os
import time
from concurrent.futures import ProcessPoolExecutor

import pytest

from repro.obs.metrics import Registry
from repro.obs.spool import merge_spool, worker_capture
from repro.obs.tracing import Tracer


# ----------------------------------------------------------------------
# Tracing
# ----------------------------------------------------------------------


class TestTracer:
    def test_disabled_is_shared_noop(self):
        tracer = Tracer(enabled=False)
        a = tracer.span("hot")
        b = tracer.span("loop", cat="x")
        assert a is b  # one shared object, no per-call allocation
        with a as sp:
            sp.set("key", "value")  # must be accepted and dropped
        tracer.instant("point")
        assert tracer.events() == []

    def test_span_records_chrome_complete_event(self):
        tracer = Tracer(enabled=True)
        with tracer.span("work", cat="test", workload="gzipish") as sp:
            time.sleep(0.002)
            sp.set("events", 42)
        (event,) = tracer.events()
        assert event["name"] == "work"
        assert event["ph"] == "X"
        assert event["cat"] == "test"
        assert event["pid"] == os.getpid()
        assert event["dur"] >= 2000  # microseconds
        assert event["args"]["workload"] == "gzipish"
        assert event["args"]["events"] == 42
        assert "cpu_ms" in event["args"]

    def test_nesting_parent_links_and_containment(self):
        tracer = Tracer(enabled=True)
        with tracer.span("outer"):
            with tracer.span("middle"):
                with tracer.span("inner"):
                    pass
        inner, middle, outer = tracer.events()  # innermost exits first
        assert inner["args"]["parent"] == "middle"
        assert middle["args"]["parent"] == "outer"
        assert "parent" not in outer["args"]
        # Children are contained in their parent's interval.
        assert outer["ts"] <= middle["ts"]
        assert middle["ts"] + middle["dur"] <= outer["ts"] + outer["dur"] + 1.0

    def test_sibling_spans_do_not_link(self):
        tracer = Tracer(enabled=True)
        with tracer.span("first"):
            pass
        with tracer.span("second"):
            pass
        first, second = tracer.events()
        assert "parent" not in first["args"]
        assert "parent" not in second["args"]

    def test_ring_buffer_caps_events(self):
        tracer = Tracer(enabled=True, capacity=10)
        for i in range(25):
            with tracer.span(f"s{i}"):
                pass
        events = tracer.events()
        assert len(events) == 10
        assert events[0]["name"] == "s15"  # oldest dropped

    def test_export_is_valid_chrome_trace(self, tmp_path):
        tracer = Tracer(enabled=True)
        with tracer.span("alpha"):
            pass
        tracer.instant("mark", detail=1)
        path = tracer.export(tmp_path / "trace.json")
        doc = json.loads(path.read_text())
        assert isinstance(doc["traceEvents"], list)
        phases = {e["ph"] for e in doc["traceEvents"]}
        assert {"M", "X", "i"} <= phases
        names = {e["name"] for e in doc["traceEvents"]}
        assert {"alpha", "mark", "process_name"} <= names

    def test_add_chrome_events_works_while_disabled(self):
        tracer = Tracer(enabled=False)
        tracer.add_chrome_events([{"name": "w", "ph": "X", "ts": 0, "dur": 1,
                                   "pid": 1234, "tid": 1, "args": {}}])
        assert len(tracer.events()) == 1


# ----------------------------------------------------------------------
# Metrics
# ----------------------------------------------------------------------


class TestMetrics:
    def test_counter_and_labels(self):
        registry = Registry()
        hits = registry.counter("cache_hits_total", "cache hits")
        hits.inc()
        hits.inc(2)
        hits.labels(kind="trace").inc(5)
        hits.labels(kind="trace").inc()
        assert hits.value == 3
        assert hits.labels(kind="trace").value == 6
        assert hits.total() == 9
        with pytest.raises(ValueError):
            hits.inc(-1)

    def test_metric_kind_collision_rejected(self):
        registry = Registry()
        registry.counter("x_total")
        with pytest.raises(ValueError):
            registry.gauge("x_total")

    def test_gauge(self):
        registry = Registry()
        gauge = registry.gauge("pending")
        gauge.set(7)
        gauge.inc(3)
        gauge.dec()
        assert gauge.value == 9

    def test_histogram_percentile_math(self):
        registry = Registry()
        hist = registry.histogram("lat", buckets=(1.0, 2.0, 4.0, 8.0))
        for value in [0.5, 1.5, 1.5, 3.0, 3.0, 3.0, 5.0, 5.0, 7.0, 100.0]:
            hist.observe(value)
        assert hist.count == 10
        assert hist.sum == pytest.approx(129.5)
        assert hist.min == 0.5
        assert hist.max == 100.0
        # The p50 target (5th of 10) falls in the (2, 4] bucket.
        assert 2.0 <= hist.percentile(0.5) <= 4.0
        # p90 lands in the (4, 8] bucket.
        assert 4.0 <= hist.percentile(0.9) <= 8.0
        # Estimates never leave the observed range, even in +Inf's bucket.
        assert hist.percentile(1.0) <= 100.0
        assert hist.percentile(0.0) >= 0.5
        with pytest.raises(ValueError):
            hist.percentile(1.5)

    def test_histogram_empty_and_single(self):
        registry = Registry()
        hist = registry.histogram("lat", buckets=(1.0, 2.0))
        assert math.isnan(hist.percentile(0.5))
        hist.observe(1.7)
        assert hist.percentile(0.5) == pytest.approx(1.7)
        assert hist.percentile(0.99) == pytest.approx(1.7)

    def test_histogram_bucket_counts_cumulative(self):
        registry = Registry()
        hist = registry.histogram("lat", buckets=(1.0, 2.0))
        for value in (0.5, 1.5, 9.0):
            hist.observe(value)
        assert hist.bucket_counts() == {"1": 1, "2": 2, "+Inf": 3}

    def test_prometheus_exposition_format(self):
        registry = Registry()
        registry.counter("requests_total", "requests served").inc(3)
        registry.counter("requests_total").labels(method="get").inc(2)
        registry.gauge("open_connections").set(4)
        hist = registry.histogram("latency_seconds", "req latency",
                                  buckets=(0.1, 1.0))
        hist.observe(0.05)
        hist.observe(0.5)
        text = registry.render_prometheus()
        assert "# HELP requests_total requests served" in text
        assert "# TYPE requests_total counter" in text
        assert "\nrequests_total 3" in text
        assert 'requests_total{method="get"} 2' in text
        assert "# TYPE open_connections gauge" in text
        assert "\nopen_connections 4" in text
        assert "# TYPE latency_seconds histogram" in text
        assert 'latency_seconds_bucket{le="0.1"} 1' in text
        assert 'latency_seconds_bucket{le="1"} 2' in text
        assert 'latency_seconds_bucket{le="+Inf"} 2' in text
        assert "latency_seconds_count 2" in text
        assert text.endswith("\n")

    def test_snapshot_and_merge(self):
        source = Registry()
        source.counter("jobs_total").inc(4)
        source.counter("jobs_total").labels(kind="sim").inc(2)
        source.gauge("depth").set(3)
        hist = source.histogram("wait", buckets=(1.0, 2.0))
        hist.observe(0.5)
        hist.observe(1.5)

        target = Registry()
        target.counter("jobs_total").inc(1)
        target.histogram("wait", buckets=(1.0, 2.0)).observe(10.0)
        target.merge_snapshot(source.snapshot())

        assert target.counter("jobs_total").value == 5
        assert target.counter("jobs_total").labels(kind="sim").value == 2
        assert target.gauge("depth").value == 3
        merged = target.histogram("wait")
        assert merged.count == 3
        assert merged.sum == pytest.approx(12.0)
        assert merged.min == 0.5
        assert merged.max == 10.0

    def test_snapshot_is_json_safe(self):
        registry = Registry()
        registry.counter("a_total").inc()
        registry.histogram("h").observe(0.2)
        json.dumps(registry.snapshot())  # must not raise

    def test_prometheus_label_value_escaping(self):
        registry = Registry()
        registry.counter("odd_total").labels(
            path='C:\\tmp', note='say "hi"', multi="a\nb").inc()
        text = registry.render_prometheus()
        assert r'path="C:\\tmp"' in text
        assert r'note="say \"hi\""' in text
        assert r'multi="a\nb"' in text
        assert "\na\nb" not in text  # the newline never splits a line
        # Snapshot keys stay unescaped so merge round-trips exactly.
        snap = registry.snapshot()
        labels = snap["odd_total"]["labels"]
        (key,) = labels
        assert 'C:\\tmp' in key and '\n' in key
        target = Registry()
        target.merge_snapshot(snap)
        assert target.render_prometheus() == text

    def test_prometheus_help_escaping(self):
        registry = Registry()
        registry.counter("x_total", "first line\nsecond \\ line").inc()
        text = registry.render_prometheus()
        assert r"# HELP x_total first line\nsecond \\ line" in text

    def test_prometheus_escaped_histogram_labels(self):
        registry = Registry()
        registry.histogram("lat", buckets=(1.0,)).labels(
            shard='s"0').observe(0.5)
        text = registry.render_prometheus()
        assert r'lat_bucket{shard="s\"0",le="1"} 1' in text
        assert r'lat_sum{shard="s\"0"}' in text

    def test_empty_histogram_percentiles_are_nan_and_snapshot_none(self):
        registry = Registry()
        hist = registry.histogram("empty_seconds", buckets=(0.1, 1.0))
        assert math.isnan(hist.percentile(0.5))
        assert math.isnan(hist.percentile(0.99))
        entry = registry.snapshot()["empty_seconds"]
        assert entry["count"] == 0
        assert entry["p50"] is None and entry["p99"] is None
        assert entry["min"] is None and entry["max"] is None
        # Exposition still renders the (all-zero) cumulative buckets.
        text = registry.render_prometheus()
        assert 'empty_seconds_bucket{le="+Inf"} 0' in text
        assert "empty_seconds_count 0" in text

    def test_cross_process_gauge_merge_adopts_not_sums(self):
        # merge_snapshot models "same process, newer state": the gauge
        # adopts the incoming value (last write wins)...
        target = Registry()
        target.gauge("depth").set(3)
        source = Registry()
        source.gauge("depth").set(7)
        target.merge_snapshot(source.snapshot())
        assert target.gauge("depth").value == 7
        # ...while the fleet's additive cross-shard merge must NOT sum
        # point-in-time gauges from different processes: it drops them.
        from repro.obs import merge_additive_snapshot

        fleet = Registry()
        fleet.counter("jobs_total").inc(1)
        shard = Registry()
        shard.counter("jobs_total").inc(2)
        shard.gauge("depth").set(7)
        merge_additive_snapshot(fleet, shard.snapshot())
        assert fleet.counter("jobs_total").value == 3
        assert "depth" not in fleet.snapshot()


# ----------------------------------------------------------------------
# ProcessPool spool round-trip
# ----------------------------------------------------------------------


def _spooled_task(spool_dir, index: int) -> int:
    from repro.obs import get_registry, get_tracer

    with worker_capture(spool_dir):
        with get_tracer().span("worker.task", cat="test", index=index):
            get_registry().counter("tasks_done_total").inc()
            time.sleep(0.2)  # overlap so the pool uses both workers
    return os.getpid()


@pytest.mark.slow
def test_processpool_spans_land_in_parent_trace(tmp_path):
    spool_dir = tmp_path / "spool"
    spool_dir.mkdir()
    with ProcessPoolExecutor(max_workers=2) as pool:
        futures = [pool.submit(_spooled_task, spool_dir, i) for i in range(4)]
        worker_pids = {f.result() for f in futures}

    tracer = Tracer(enabled=False)  # merge works even when parent is disabled
    registry = Registry()
    merged = merge_spool(spool_dir, tracer=tracer, registry=registry)
    assert merged == 4
    events = tracer.events()
    spans = [e for e in events if e["name"] == "worker.task"]
    assert len(spans) == 4
    assert {e["pid"] for e in spans} == worker_pids
    assert all(pid != os.getpid() for pid in worker_pids)
    assert {e["args"]["index"] for e in spans} == {0, 1, 2, 3}
    assert registry.counter("tasks_done_total").value == 4


@pytest.mark.slow
def test_parallel_warm_merges_worker_observability(tmp_path):
    """End-to-end: a traced --jobs 2 warm yields spans from >= 1 worker
    process plus the parent, and worker cache counters reach the parent
    registry."""
    from repro.core.experiment import ExperimentRunner, SuiteConfig
    from repro.obs import get_registry, get_tracer, set_registry
    from repro.obs.metrics import Registry as _Registry

    tracer = get_tracer()
    previous_registry = set_registry(_Registry())
    tracer.clear()
    tracer.configure(enabled=True)
    try:
        runner = ExperimentRunner(SuiteConfig(scale=0.05, cache_dir=tmp_path / "cache"))
        runner.prefetch(
            sims=[("gzipish", "train", "gshare"), ("mcfish", "train", "gshare")],
            jobs=2,
        )
        events = tracer.events()
        registry = get_registry()
    finally:
        tracer.configure(enabled=False)
        tracer.clear()
        set_registry(previous_registry)

    pids = {e["pid"] for e in events if e.get("ph") == "X"}
    assert os.getpid() in pids
    assert len(pids) >= 2  # at least one worker process contributed
    names = {e["name"] for e in events}
    assert {"warm", "warm.trace", "warm.sim", "experiment.trace",
            "experiment.sim", "vm.run"} <= names
    # Worker-side cache misses were merged into the parent registry.
    misses = registry.counter("cache_misses_total")
    assert misses.labels(kind="trace").value == 2
    assert misses.labels(kind="sim").value == 2


# ----------------------------------------------------------------------
# Cache counters on the serial path
# ----------------------------------------------------------------------


def test_cache_hit_miss_counters(tmp_path):
    from repro.core.experiment import ExperimentRunner, SuiteConfig
    from repro.obs import get_registry

    runner = ExperimentRunner(SuiteConfig(scale=0.05, cache_dir=tmp_path))
    hits = get_registry().counter("cache_hits_total").labels(kind="trace")
    misses = get_registry().counter("cache_misses_total").labels(kind="trace")
    hits_before, misses_before = hits.value, misses.value
    runner.trace("gzipish", "train")
    assert misses.value == misses_before + 1
    fresh = ExperimentRunner(SuiteConfig(scale=0.05, cache_dir=tmp_path))
    fresh.trace("gzipish", "train")
    assert hits.value == hits_before + 1


def test_corrupt_cache_counter(tmp_path):
    from repro.core.experiment import ExperimentRunner, SuiteConfig
    from repro.obs import get_registry

    runner = ExperimentRunner(SuiteConfig(scale=0.05, cache_dir=tmp_path))
    runner.trace("gzipish", "train")
    path = runner._trace_path("gzipish", "train")
    path.write_bytes(b"not a real npz")
    corrupt = get_registry().counter("cache_corrupt_total").labels(kind="trace")
    before = corrupt.value
    fresh = ExperimentRunner(SuiteConfig(scale=0.05, cache_dir=tmp_path))
    fresh.trace("gzipish", "train")
    # The load is attempted both before and after taking the artifact
    # lock, so one corrupt file can be counted once or twice.
    assert corrupt.value > before


# ----------------------------------------------------------------------
# ServiceMetrics backward compatibility
# ----------------------------------------------------------------------


class TestServiceMetricsCompat:
    #: Every key the pre-registry ServiceMetrics.snapshot() emitted.
    LEGACY_KEYS = {
        "uptime_seconds", "active_sessions", "connections_accepted",
        "connections_open", "sessions_opened", "sessions_resumed",
        "sessions_closed", "sessions_evicted", "events_total",
        "events_per_second", "frames_total", "frames_rejected",
        "checkpoints_written", "queries_served",
    }

    def test_snapshot_keeps_legacy_keys(self):
        from repro.service.metrics import ServiceMetrics

        snapshot = ServiceMetrics().snapshot(active_sessions=3)
        assert self.LEGACY_KEYS <= set(snapshot)
        assert snapshot["active_sessions"] == 3
        # New telemetry only adds keys.
        assert {"bytes_in", "bytes_out", "frame_latency"} <= set(snapshot)

    def test_counters_flow_into_snapshot_and_registry(self):
        from repro.service.metrics import ServiceMetrics

        metrics = ServiceMetrics()
        metrics.frames_total.inc(5)
        metrics.bytes_in.inc(100)
        metrics.frame_latency.observe(0.001)
        snapshot = metrics.snapshot()
        assert snapshot["frames_total"] == 5
        assert snapshot["bytes_in"] == 100
        assert snapshot["frame_latency"]["count"] == 1
        assert snapshot["frame_latency"]["p50"] is not None
        # The registry is the source of truth.
        assert metrics.registry.counter("service_frames_total").value == 5
        assert "service_frames_total 5" in metrics.registry.render_prometheus()
        assert metrics.registry.counter("service_bytes_in_total").value == 100

    def test_instances_are_isolated(self):
        from repro.service.metrics import ServiceMetrics

        a, b = ServiceMetrics(), ServiceMetrics()
        a.frames_total.inc()
        assert b.frames_total.value == 0


# ----------------------------------------------------------------------
# CLI surfaces
# ----------------------------------------------------------------------


@pytest.mark.slow
def test_cli_trace_and_metrics_flags(tmp_path, monkeypatch, capsys):
    from repro import cli
    from repro.obs import get_tracer

    monkeypatch.setenv("REPRO_2DPROF_CACHE", str(tmp_path / "cache"))
    trace_file = tmp_path / "out.json"
    metrics_file = tmp_path / "metrics.json"
    code = cli.main([
        "--scale", "0.05", "profile", "gzipish",
        "--trace", str(trace_file), "--metrics-json", str(metrics_file),
    ])
    get_tracer().configure(enabled=False)
    get_tracer().clear()
    assert code == 0
    doc = json.loads(trace_file.read_text())
    names = {e["name"] for e in doc["traceEvents"]}
    assert {"experiment.trace", "experiment.sim", "vm.run"} <= names
    metrics = json.loads(metrics_file.read_text())
    assert "cache_misses_total" in metrics
    assert "vm_instructions_total" in metrics


@pytest.mark.slow
def test_cli_stats_subcommand(tmp_path, capsys):
    from repro import cli
    from repro.service.client import StreamingClient
    from repro.service.server import ServerThread

    thread = ServerThread(checkpoint_dir=tmp_path / "ckpt").start()
    try:
        with StreamingClient("127.0.0.1", thread.port) as client:
            client.ping()
        code = cli.main(["stats", "--port", str(thread.port)])
        assert code == 0
        out = capsys.readouterr().out
        assert "frames_total" in out
        assert "bytes_in" in out
        assert "frame_latency" in out
        code = cli.main(["stats", "--port", str(thread.port), "--json"])
        assert code == 0
        parsed = json.loads(capsys.readouterr().out)
        assert parsed["frames_total"] >= 1
    finally:
        thread.drain()
