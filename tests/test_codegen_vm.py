"""End-to-end language tests: compile Minic and check execution semantics.

These exercise codegen + VM together, statement by statement and operator
by operator; the VM is the ground truth for all workload behaviour, so
this file is deliberately exhaustive.
"""

import pytest

from repro.errors import VMRuntimeError, FuelExhausted
from repro.lang import compile_source
from repro.vm import InputSet, Machine


def run(source, data=(), args=(), fuel=10_000_000):
    program = compile_source(source)
    machine = Machine(program, fuel=fuel)
    return machine.run(InputSet.make("t", data=data, args=args))


def result_of(expr, pre=""):
    return run(f"func main() {{ {pre} return {expr}; }}").return_value


class TestArithmetic:
    @pytest.mark.parametrize("expr,expected", [
        ("1 + 2", 3), ("5 - 9", -4), ("6 * 7", 42),
        ("7 / 2", 3), ("-7 / 2", -3), ("7 / -2", -3), ("-7 / -2", 3),
        ("7 % 3", 1), ("-7 % 3", -1), ("7 % -3", 1),
        ("12 & 10", 8), ("12 | 10", 14), ("12 ^ 10", 6),
        ("1 << 10", 1024), ("1024 >> 3", 128),
        ("-5", -5), ("~0", -1), ("!0", 1), ("!42", 0),
        ("3 < 4", 1), ("4 <= 4", 1), ("5 > 5", 0), ("5 >= 5", 1),
        ("3 == 3", 1), ("3 != 3", 0),
    ])
    def test_expression(self, expr, expected):
        assert result_of(expr) == expected

    def test_precedence_evaluation(self):
        assert result_of("2 + 3 * 4 - 1") == 13
        assert result_of("(2 + 3) * (4 - 1)") == 15

    def test_shift_count_masked(self):
        # Shift counts are masked to 6 bits like 64-bit hardware.
        assert result_of("1 << 64") == 1
        assert result_of("1 << 65") == 2

    def test_division_by_zero_raises(self):
        with pytest.raises(VMRuntimeError, match="division by zero"):
            run("func main() { var z = 0; return 1 / z; }")

    def test_modulo_by_zero_raises(self):
        with pytest.raises(VMRuntimeError, match="modulo by zero"):
            run("func main() { var z = 0; return 1 % z; }")


class TestShortCircuit:
    def test_and_result_values(self):
        assert result_of("2 && 3") == 1
        assert result_of("0 && 3") == 0
        assert result_of("2 && 0") == 0

    def test_or_result_values(self):
        assert result_of("0 || 0") == 0
        assert result_of("0 || 9") == 1
        assert result_of("5 || 0") == 1

    def test_and_short_circuits_side_effects(self):
        source = """
        global hits = 0;
        func bump() { hits += 1; return 1; }
        func main() {
            var r = 0 && bump();
            return hits;
        }
        """
        assert run(source).return_value == 0

    def test_or_short_circuits_side_effects(self):
        source = """
        global hits = 0;
        func bump() { hits += 1; return 1; }
        func main() {
            var r = 1 || bump();
            return hits;
        }
        """
        assert run(source).return_value == 0

    def test_rhs_evaluated_when_needed(self):
        source = """
        global hits = 0;
        func bump() { hits += 1; return 0; }
        func main() {
            var r = 1 && bump();
            return hits * 10 + r;
        }
        """
        assert run(source).return_value == 10


class TestControlFlow:
    def test_if_else_chain(self):
        source = """
        func classify(x) {
            if (x < 0) { return -1; }
            else if (x == 0) { return 0; }
            else { return 1; }
        }
        func main() { return classify(arg(0)); }
        """
        program = compile_source(source)
        machine = Machine(program)
        for value, expected in [(-5, -1), (0, 0), (7, 1)]:
            assert machine.run(InputSet.make("t", args=[value])).return_value == expected

    def test_while_loop(self):
        assert result_of("s", pre="var s = 0; var i = 0; while (i < 5) { s += i; i += 1; }") == 10

    def test_while_false_never_runs(self):
        assert result_of("s", pre="var s = 7; var c = 0; while (c) { s = 0; }") == 7

    def test_do_while_runs_at_least_once(self):
        assert result_of("s", pre="var s = 0; var c = 0; do { s += 1; } while (c);") == 1

    def test_for_loop_sum(self):
        assert result_of("s", pre="var s = 0; var i; for (i = 1; i <= 4; i += 1) { s += i; }") == 10

    def test_break(self):
        pre = "var s = 0; var i; for (i = 0; i < 100; i += 1) { if (i == 5) { break; } s += 1; }"
        assert result_of("s", pre=pre) == 5

    def test_continue_in_for_reaches_step(self):
        pre = "var s = 0; var i; for (i = 0; i < 6; i += 1) { if (i % 2) { continue; } s += i; }"
        assert result_of("s", pre=pre) == 6

    def test_continue_in_while(self):
        pre = ("var s = 0; var i = 0; while (i < 6) { i += 1; "
               "if (i % 2 == 0) { continue; } s += i; }")
        assert result_of("s", pre=pre) == 9

    def test_break_in_do_while(self):
        pre = "var s = 0; do { s += 1; if (s == 3) { break; } } while (1);"
        assert result_of("s", pre=pre) == 3

    def test_nested_loops_break_inner_only(self):
        pre = """
        var total = 0;
        var i; var j;
        for (i = 0; i < 3; i += 1) {
            for (j = 0; j < 10; j += 1) {
                if (j == 2) { break; }
                total += 1;
            }
        }
        """
        assert result_of("total", pre=pre) == 6

    def test_infinite_loop_hits_fuel(self):
        with pytest.raises(FuelExhausted):
            run("func main() { while (1) { } return 0; }", fuel=10_000)


class TestFunctions:
    def test_recursion_fibonacci(self):
        source = """
        func fib(n) {
            if (n < 2) { return n; }
            return fib(n - 1) + fib(n - 2);
        }
        func main() { return fib(12); }
        """
        assert run(source).return_value == 144

    def test_mutual_recursion(self):
        source = """
        func is_even(n) { if (n == 0) { return 1; } return is_odd(n - 1); }
        func is_odd(n) { if (n == 0) { return 0; } return is_even(n - 1); }
        func main() { return is_even(10) * 10 + is_odd(7); }
        """
        assert run(source).return_value == 11

    def test_falls_off_end_returns_zero(self):
        assert run("func f() { } func main() { return f() + 5; }").return_value == 5

    def test_argument_evaluation_order(self):
        source = """
        global log = 0;
        func note(tag) { log = log * 10 + tag; return tag; }
        func three(a, b, c) { return log; }
        func main() { return three(note(1), note(2), note(3)); }
        """
        assert run(source).return_value == 123

    def test_deep_recursion_guard(self):
        source = """
        func down(n) { return down(n + 1); }
        func main() { return down(0); }
        """
        with pytest.raises(VMRuntimeError, match="stack overflow"):
            run(source)


class TestArrays:
    def test_global_array_read_write(self):
        source = """
        global a[4];
        func main() {
            a[0] = 10; a[3] = 40;
            return a[0] + a[1] + a[3];
        }
        """
        assert run(source).return_value == 50

    def test_local_array(self):
        assert result_of("b[1]", pre="var b[3]; b[1] = 9;") == 9

    def test_dynamic_array_builtin(self):
        assert result_of("len(a) + a[5]", pre="var a = array(10); a[5] = 3;") == 13

    def test_arrays_are_references(self):
        source = """
        func fill(arr, v) { arr[0] = v; return 0; }
        func main() { var a[2]; fill(a, 42); return a[0]; }
        """
        assert run(source).return_value == 42

    def test_compound_assign_on_element(self):
        assert result_of("a[1]", pre="var a[3]; a[1] = 5; a[1] += 7;") == 12

    def test_compound_index_evaluated_once_semantics(self):
        # DUP2-based compound assignment must not double-apply side effects
        # of the value expression.
        source = """
        global a[4];
        global calls = 0;
        func idx() { calls += 1; return 2; }
        func main() { a[idx()] += 3; return calls * 100 + a[2]; }
        """
        # The index expression is evaluated once thanks to DUP2.
        assert run(source).return_value == 103

    def test_out_of_bounds_read(self):
        with pytest.raises(VMRuntimeError, match="out of range"):
            run("global a[4]; func main() { return a[4]; }")

    def test_negative_index(self):
        with pytest.raises(VMRuntimeError, match="out of range"):
            run("global a[4]; func main() { var i = -1; return a[i]; }")

    def test_negative_array_size(self):
        with pytest.raises(VMRuntimeError, match="negative array size"):
            run("func main() { var n = -3; var a = array(n); return 0; }")


class TestBuiltins:
    def test_input_and_input_len(self):
        source = """
        func main() {
            var s = 0;
            var i;
            for (i = 0; i < input_len(); i += 1) { s += input(i); }
            return s;
        }
        """
        assert run(source, data=[1, 2, 3, 4]).return_value == 10

    def test_input_out_of_range(self):
        with pytest.raises(VMRuntimeError, match="input index"):
            run("func main() { return input(0); }")

    def test_arg_and_arg_count(self):
        assert run("func main() { return arg(0) * 10 + arg_count(); }",
                   args=[7, 9]).return_value == 72

    def test_arg_out_of_range(self):
        with pytest.raises(VMRuntimeError, match="arg index"):
            run("func main() { return arg(2); }", args=[1])

    def test_output_stream(self):
        result = run("func main() { output(5); output(6); return 0; }")
        assert result.output == [5, 6]

    @pytest.mark.parametrize("expr,expected", [
        ("abs(-9)", 9), ("abs(9)", 9), ("abs(0)", 0),
        ("min(3, 8)", 3), ("min(8, 3)", 3),
        ("max(3, 8)", 8), ("max(-1, -5)", -1),
    ])
    def test_math_builtins(self, expr, expected):
        assert result_of(expr) == expected

    def test_rng_deterministic(self):
        source = """
        func main() {
            srand(99);
            var a = rand();
            srand(99);
            var b = rand();
            return a == b;
        }
        """
        assert run(source).return_value == 1

    def test_rng_advances(self):
        source = "func main() { srand(1); return rand() != rand(); }"
        assert run(source).return_value == 1

    def test_len_of_non_array(self):
        with pytest.raises(VMRuntimeError, match="non-array"):
            run("func main() { var x = 3; return len(x); }")


class TestRunResultAccounting:
    def test_instruction_and_branch_counts_positive(self, counter_program):
        machine = Machine(counter_program)
        result = machine.run(InputSet.make("t", args=[30]))
        assert result.instructions > 0
        assert result.branches > 0

    def test_branch_count_matches_trace_mode(self, counter_program):
        machine = Machine(counter_program)
        plain = machine.run(InputSet.make("t", args=[30]))
        traced = machine.run(InputSet.make("t", args=[30]), mode="trace")
        assert plain.branches == traced.branches == len(traced.packed_trace)

    def test_globals_reset_between_runs(self):
        program = compile_source("global g = 5; func main() { g += 1; return g; }")
        machine = Machine(program)
        assert machine.run(InputSet.make("t")).return_value == 6
        assert machine.run(InputSet.make("t")).return_value == 6

    def test_callback_mode_requires_hook(self, counter_program):
        machine = Machine(counter_program)
        with pytest.raises(ValueError, match="hook"):
            machine.run(InputSet.make("t", args=[1]), mode="callback")

    def test_unknown_mode_rejected(self, counter_program):
        machine = Machine(counter_program)
        with pytest.raises(ValueError, match="unknown run mode"):
            machine.run(InputSet.make("t", args=[1]), mode="bogus")
