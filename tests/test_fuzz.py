"""Differential fuzzing of the Minic compiler.

A seeded generator produces random *valid* Minic programs (declare-before-
use, bounded loops, guarded recursion).  Each program is compiled with and
without optimization and executed; both builds must produce identical
observable behaviour (return value, output stream, or the same guest
fault).  The pretty-printer round-trip is checked on the same programs.

This is the compiler-correctness net under the whole experiment stack: a
miscompilation would silently corrupt every branch trace.
"""

from __future__ import annotations

import random

import pytest

from repro.errors import VMError
from repro.lang import compile_source
from repro.lang.lexer import tokenize
from repro.lang.parser import parse
from repro.lang.printer import print_program
from repro.vm import InputSet, Machine

_BINOPS = ["+", "-", "*", "/", "%", "&", "|", "^", "<<", ">>",
           "==", "!=", "<", "<=", ">", ">="]
_UNOPS = ["-", "!", "~"]


class ProgramGenerator:
    """Generates one random, semantically valid Minic program per seed."""

    def __init__(self, seed: int):
        self.rng = random.Random(seed)
        self.globals: list[str] = []
        self.global_arrays: list[tuple[str, int]] = []
        self.fresh = 0

    def name(self, prefix: str) -> str:
        self.fresh += 1
        return f"{prefix}{self.fresh}"

    # ------------------------------------------------------------------
    # Expressions (over the in-scope variable list)
    # ------------------------------------------------------------------

    def expr(self, scope: list[str], depth: int = 0) -> str:
        roll = self.rng.random()
        if depth >= 3 or roll < 0.3:
            return self.leaf(scope)
        if roll < 0.75:
            op = self.rng.choice(_BINOPS)
            left = self.expr(scope, depth + 1)
            right = self.expr(scope, depth + 1)
            if op in ("/", "%"):
                # Guard division: `(e | 1)` is never zero... unless negative
                # -1 cases are fine (nonzero).  Keeps faults rare but legal.
                right = f"({right} | 1)"
            if op in ("<<", ">>"):
                right = f"({right} & 15)"
            return f"({left} {op} {right})"
        if roll < 0.85:
            return f"({self.rng.choice(_UNOPS)}{self.expr(scope, depth + 1)})"
        if roll < 0.95 and self.global_arrays:
            array, size = self.rng.choice(self.global_arrays)
            index = self.expr(scope, depth + 1)
            return f"{array}[(({index}) % {size} + {size}) % {size}]"
        return f"abs({self.expr(scope, depth + 1)})"

    def leaf(self, scope: list[str]) -> str:
        roll = self.rng.random()
        if scope and roll < 0.5:
            return self.rng.choice(scope)
        if self.globals and roll < 0.7:
            return self.rng.choice(self.globals)
        return str(self.rng.randint(-64, 64))

    # ------------------------------------------------------------------
    # Statements
    # ------------------------------------------------------------------

    def block(self, scope: list[str], depth: int, budget: int) -> list[str]:
        lines: list[str] = []
        local_scope = list(scope)
        for _ in range(self.rng.randint(1, max(1, budget))):
            lines.extend(self.statement(local_scope, depth))
        return lines

    def statement(self, scope: list[str], depth: int) -> list[str]:
        roll = self.rng.random()
        if roll < 0.3 or not scope:
            name = self.name("v")
            line = f"var {name} = {self.expr(scope)};"
            scope.append(name)
            return [line]
        if roll < 0.55:
            target = self.rng.choice(scope + self.globals) if self.globals else self.rng.choice(scope)
            op = self.rng.choice(["=", "+=", "-=", "*=", "&=", "|=", "^="])
            return [f"{target} {op} {self.expr(scope)};"]
        if roll < 0.7 and depth < 2:
            cond = self.expr(scope)
            then_body = self.block(scope, depth + 1, 2)
            if self.rng.random() < 0.5:
                else_body = self.block(scope, depth + 1, 2)
                return ([f"if ({cond}) {{"] + [f"    {line}" for line in then_body]
                        + ["} else {"] + [f"    {line}" for line in else_body] + ["}"])
            return [f"if ({cond}) {{"] + [f"    {line}" for line in then_body] + ["}"]
        if roll < 0.85 and depth < 2:
            # Bounded counting loop (no unbounded whiles: fuel safety).
            counter = self.name("i")
            bound = self.rng.randint(1, 12)
            body = self.block(scope + [counter], depth + 1, 2)
            return ([f"for (var {counter} = 0; {counter} < {bound}; {counter} += 1) {{"]
                    + [f"    {line}" for line in body] + ["}"])
        if roll < 0.9 and self.global_arrays:
            array, size = self.rng.choice(self.global_arrays)
            index = self.expr(scope)
            return [f"{array}[(({index}) % {size} + {size}) % {size}] = {self.expr(scope)};"]
        return [f"output({self.expr(scope)});"]

    # ------------------------------------------------------------------

    def program(self) -> str:
        lines: list[str] = []
        for _ in range(self.rng.randint(0, 3)):
            name = self.name("g")
            lines.append(f"global {name} = {self.rng.randint(-20, 20)};")
            self.globals.append(name)
        for _ in range(self.rng.randint(0, 2)):
            name = self.name("arr")
            size = self.rng.randint(2, 16)
            lines.append(f"global {name}[{size}];")
            self.global_arrays.append((name, size))

        # A couple of helper functions with guarded recursion.
        helpers = []
        for _ in range(self.rng.randint(0, 2)):
            fname = self.name("f")
            param = self.name("p")
            body = self.block([param], depth=1, budget=2)
            helpers.append(fname)
            lines.append(f"func {fname}({param}) {{")
            lines.extend(f"    {line}" for line in body)
            lines.append(f"    return {self.expr([param])};")
            lines.append("}")

        lines.append("func main() {")
        main_scope: list[str] = []
        for line in self.block(main_scope, depth=0, budget=6):
            lines.append(f"    {line}")
        for fname in helpers:
            lines.append(f"    output({fname}({self.expr(main_scope)} & 31));")
        lines.append(f"    return {self.expr(main_scope)};")
        lines.append("}")
        return "\n".join(lines)


def observable(source: str, optimize: bool):
    """(kind, payload) of one build's behaviour."""
    program = compile_source(source, optimize=optimize)
    machine = Machine(program, fuel=3_000_000)
    try:
        result = machine.run(InputSet.make("fuzz"))
    except VMError as exc:
        return ("fault", type(exc).__name__)
    return ("ok", (result.return_value, tuple(result.output)))


@pytest.mark.parametrize("seed", range(40))
def test_optimized_matches_unoptimized(seed):
    source = ProgramGenerator(seed).program()
    plain = observable(source, optimize=False)
    optimized = observable(source, optimize=True)
    assert plain == optimized, f"divergence for seed {seed}:\n{source}"


@pytest.mark.parametrize("seed", range(40, 60))
def test_printer_roundtrip_on_random_programs(seed):
    source = ProgramGenerator(seed).program()
    tree = parse(tokenize(source))
    printed = print_program(tree)
    printed_again = print_program(parse(tokenize(printed)))
    assert printed == printed_again

    # The printed program must also behave identically.
    assert observable(source, True) == observable(printed, True), source


@pytest.mark.parametrize("seed", range(60, 70))
def test_traces_deterministic_on_random_programs(seed):
    source = ProgramGenerator(seed).program()
    program = compile_source(source)
    machine = Machine(program, fuel=3_000_000)
    try:
        first = machine.run(InputSet.make("fuzz"), mode="trace")
        second = machine.run(InputSet.make("fuzz"), mode="trace")
    except VMError:
        pytest.skip("random program faults; determinism of faults is "
                    "covered by the differential test")
    assert first.packed_trace == second.packed_trace
