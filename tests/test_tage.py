"""Tests for the simplified TAGE predictor."""

import numpy as np
import pytest

from repro.predictors import Tage, make_predictor, simulate
from repro.predictors.tage import _FoldedHistory
from repro.trace.synthetic import (
    SiteSpec,
    bernoulli_site,
    interleave_sites,
    pattern_site,
)


class TestFoldedHistory:
    def test_folded_stays_within_width(self):
        folded = _FoldedHistory(length=20, width=8)
        history = 0
        for step in range(200):
            bit = (step * 7) % 3 == 0
            outgoing = (history >> 19) & 1
            history = ((history << 1) | bit) & ((1 << 20) - 1)
            folded.update(int(bit), outgoing)
            assert 0 <= folded.folded < (1 << 8)

    def test_nonzero_history_folds_nonzero(self):
        # XOR folding is lossy (e.g. all-ones folds to 0), but a single 1
        # in an otherwise-zero window must be visible.
        a = _FoldedHistory(length=12, width=6)
        b = _FoldedHistory(length=12, width=6)
        a.update(1, 0)
        b.update(0, 0)
        assert a.folded != b.folded


class TestConfiguration:
    def test_geometric_history_lengths(self):
        tage = Tage(num_tables=4, min_history=4, max_history=64)
        lengths = tage.history_lengths
        assert lengths[0] == 4 and lengths[-1] == 64
        assert lengths == sorted(lengths)

    def test_single_table(self):
        tage = Tage(num_tables=1)
        assert len(tage.history_lengths) == 1
        tage.predict_and_update(0, 1)

    def test_invalid_config(self):
        with pytest.raises(ValueError):
            Tage(num_tables=0)

    def test_describe(self):
        assert "tagged tables" in Tage().describe()


class TestPrediction:
    def test_learns_strong_bias(self):
        outcomes = bernoulli_site(8000, SiteSpec.stationary(0.95), seed=1)
        trace = interleave_sites({0: outcomes}, seed=1)
        result = simulate(Tage(), trace)
        assert result.overall_accuracy > 0.9

    def test_learns_short_pattern(self):
        trace = interleave_sites({0: pattern_site("TTN", 3000)}, seed=2)
        result = simulate(Tage(), trace)
        assert result.overall_accuracy > 0.95

    def test_learns_long_period_pattern(self):
        # Period-24 pattern exceeds a 14-bit gshare's history window but is
        # within TAGE's longest table.
        pattern = "T" * 17 + "N" * 7
        trace = interleave_sites({0: pattern_site(pattern, 1200)}, seed=3)
        tage_acc = simulate(Tage(), trace).overall_accuracy
        assert tage_acc > 0.93

    def test_outputs_are_binary(self):
        tage = Tage(num_tables=2, table_bits=6)
        rng = np.random.default_rng(4)
        for _ in range(500):
            prediction = tage.predict_and_update(int(rng.integers(0, 50)),
                                                 int(rng.integers(0, 2)))
            assert prediction in (0, 1)

    def test_reset_restores_cold_state(self):
        tage = Tage(num_tables=2, table_bits=6)
        trace = interleave_sites({0: pattern_site("TN", 500)}, seed=5)
        first = simulate(tage, trace)
        second = simulate(tage, trace)  # simulate() resets by default
        assert np.array_equal(first.correct, second.correct)

    def test_registry_integration(self):
        predictor = make_predictor("tage", num_tables=3, table_bits=7)
        assert predictor.num_tables == 3

    def test_useful_bits_bounded(self):
        tage = Tage(num_tables=3, table_bits=5)
        rng = np.random.default_rng(6)
        for _ in range(2000):
            tage.predict_and_update(int(rng.integers(0, 8)), int(rng.integers(0, 2)))
        for table in tage.useful:
            assert all(0 <= u <= 3 for u in table)
        for table in tage.counters:
            assert all(0 <= c <= 7 for c in table)
