"""Additional property-based tests: edge profiling, phase classifier, and
the cost simulator's arithmetic identities."""


import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.analysis.phases import PhaseShape, classify_series
from repro.core.edge2d import Edge2DProfiler
from repro.core.predication import AdvisorDecision, PredicationCosts
from repro.core.profiler2d import ProfilerConfig
from repro.core.timing import evaluate_policy
from repro.predictors.simulate import SimulationResult
from repro.trace.trace import BranchTrace

# ----------------------------------------------------------------------
# Shared strategies
# ----------------------------------------------------------------------


@st.composite
def traces_with_sims(draw, max_sites=4, max_len=300):
    num_sites = draw(st.integers(1, max_sites))
    length = draw(st.integers(1, max_len))
    sites = np.array(
        draw(st.lists(st.integers(0, num_sites - 1), min_size=length, max_size=length)),
        dtype=np.int32,
    )
    outcomes = np.array(
        draw(st.lists(st.integers(0, 1), min_size=length, max_size=length)),
        dtype=np.uint8,
    )
    correct = np.array(
        draw(st.lists(st.integers(0, 1), min_size=length, max_size=length)),
        dtype=np.uint8,
    )
    trace = BranchTrace(program="p", input_name="i", num_sites=num_sites,
                        sites=sites, outcomes=outcomes)
    sim = SimulationResult(
        predictor_name="arbitrary",
        num_sites=num_sites,
        correct=correct,
        exec_counts=np.bincount(sites, minlength=num_sites).astype(np.int64),
        correct_counts=np.bincount(sites, weights=correct, minlength=num_sites).astype(np.int64),
    )
    return trace, sim


# ----------------------------------------------------------------------
# Edge 2D profiler
# ----------------------------------------------------------------------


@settings(max_examples=25, deadline=None)
@given(data=traces_with_sims())
def test_edge2d_total_invariants(data):
    trace, _sim = data
    profiler = Edge2DProfiler(config=ProfilerConfig(slice_size=max(10, len(trace) // 10),
                                                    exec_threshold=1))
    report = profiler.profile(trace)
    assert report.input_dependent_sites() <= report.profiled_sites()
    for site in report.profiled_sites():
        assert 0.0 <= report.mean_bias(site) <= 1.0
        assert report.bias_std(site) <= 0.5 + 1e-9


# ----------------------------------------------------------------------
# Phase classifier
# ----------------------------------------------------------------------


@settings(max_examples=60, deadline=None)
@given(values=st.lists(st.floats(0.0, 1.0), min_size=0, max_size=80))
def test_phase_classifier_total(values):
    verdict = classify_series(np.array(values))
    assert isinstance(verdict.shape, PhaseShape)
    assert verdict.crossings >= 0
    assert verdict.std >= 0.0


@settings(max_examples=40, deadline=None)
@given(
    level=st.floats(0.1, 0.9),
    n=st.integers(8, 60),
)
def test_constant_series_always_flat(level, n):
    verdict = classify_series(np.full(n, level))
    assert verdict.shape is PhaseShape.FLAT


@settings(max_examples=30, deadline=None)
@given(
    low=st.floats(0.05, 0.4),
    high=st.floats(0.6, 0.95),
    first=st.integers(6, 30),
    second=st.integers(6, 30),
)
def test_clean_step_never_flat(low, high, first, second):
    values = np.concatenate([np.full(first, low), np.full(second, high)])
    verdict = classify_series(values)
    assert verdict.shape is not PhaseShape.FLAT
    assert verdict.shape in (PhaseShape.LEVEL_SHIFT, PhaseShape.OSCILLATING,
                             PhaseShape.DRIFT)


# ----------------------------------------------------------------------
# Cost simulator
# ----------------------------------------------------------------------


@settings(max_examples=25, deadline=None)
@given(data=traces_with_sims())
def test_predicated_cost_is_exact(data):
    trace, sim = data
    costs = PredicationCosts()
    decisions = {site: AdvisorDecision.PREDICATE for site in range(trace.num_sites)}
    report = evaluate_policy(trace, sim, decisions, costs)
    assert report.total_cycles == pytest.approx(len(trace) * costs.exec_predicated)
    assert all(s.flushes == 0 for s in report.per_site.values())


@settings(max_examples=25, deadline=None)
@given(data=traces_with_sims())
def test_branch_cost_decomposition(data):
    trace, sim = data
    costs = PredicationCosts(exec_taken=2, exec_not_taken=7, misp_penalty=13)
    report = evaluate_policy(trace, sim, {}, costs)
    taken = int(trace.outcomes.sum())
    not_taken = len(trace) - taken
    mispredictions = len(trace) - int(sim.correct.sum())
    expected = 2 * taken + 7 * not_taken + 13 * mispredictions
    assert report.total_cycles == pytest.approx(expected)
    assert sum(s.flushes for s in report.per_site.values()) == mispredictions


@settings(max_examples=20, deadline=None)
@given(data=traces_with_sims())
def test_wish_bounded_by_per_execution_envelope(data):
    # With zero overhead, each wish execution costs either that execution's
    # branch cost or the predicated cost — so the total lies between the
    # per-execution oracle (min per execution) and pessimum (max per
    # execution).  Note the adaptive mix can legitimately BEAT both pure
    # static policies, so the pure totals are not valid bounds.
    trace, sim = data
    costs = PredicationCosts()
    decisions = {site: AdvisorDecision.WISH_BRANCH for site in range(trace.num_sites)}
    wish = evaluate_policy(trace, sim, decisions, costs, wish_overhead=0.0)

    lower = upper = 0.0
    for taken, ok in zip(trace.outcomes.tolist(), sim.correct.tolist()):
        branch_cost = (costs.exec_taken if taken else costs.exec_not_taken)
        if not ok:
            branch_cost += costs.misp_penalty
        lower += min(branch_cost, costs.exec_predicated)
        upper += max(branch_cost, costs.exec_predicated)
    assert lower - 1e-6 <= wish.total_cycles <= upper + 1e-6
