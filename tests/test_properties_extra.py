"""Additional property-based tests: edge profiling, phase classifier, the
cost simulator's arithmetic identities, and the vectorized-replay kernels
(scan/packing primitives checked against naive sequential replays)."""


import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.analysis.phases import PhaseShape, classify_series
from repro.core.edge2d import Edge2DProfiler
from repro.core.predication import AdvisorDecision, PredicationCosts
from repro.core.profiler2d import ProfilerConfig
from repro.core.timing import evaluate_policy
from repro.predictors import Perceptron, simulate_reference
from repro.predictors.simulate import SimulationResult
from repro.predictors.vectorized import (
    _final_history,
    counter_scan,
    gshare_history,
    segmented_history,
    try_simulate_vectorized,
)
from repro.trace.trace import BranchTrace

# ----------------------------------------------------------------------
# Shared strategies
# ----------------------------------------------------------------------


@st.composite
def traces_with_sims(draw, max_sites=4, max_len=300):
    num_sites = draw(st.integers(1, max_sites))
    length = draw(st.integers(1, max_len))
    sites = np.array(
        draw(st.lists(st.integers(0, num_sites - 1), min_size=length, max_size=length)),
        dtype=np.int32,
    )
    outcomes = np.array(
        draw(st.lists(st.integers(0, 1), min_size=length, max_size=length)),
        dtype=np.uint8,
    )
    correct = np.array(
        draw(st.lists(st.integers(0, 1), min_size=length, max_size=length)),
        dtype=np.uint8,
    )
    trace = BranchTrace(program="p", input_name="i", num_sites=num_sites,
                        sites=sites, outcomes=outcomes)
    sim = SimulationResult(
        predictor_name="arbitrary",
        num_sites=num_sites,
        correct=correct,
        exec_counts=np.bincount(sites, minlength=num_sites).astype(np.int64),
        correct_counts=np.bincount(sites, weights=correct, minlength=num_sites).astype(np.int64),
    )
    return trace, sim


# ----------------------------------------------------------------------
# Edge 2D profiler
# ----------------------------------------------------------------------


@settings(max_examples=25, deadline=None)
@given(data=traces_with_sims())
def test_edge2d_total_invariants(data):
    trace, _sim = data
    profiler = Edge2DProfiler(config=ProfilerConfig(slice_size=max(10, len(trace) // 10),
                                                    exec_threshold=1))
    report = profiler.profile(trace)
    assert report.input_dependent_sites() <= report.profiled_sites()
    for site in report.profiled_sites():
        assert 0.0 <= report.mean_bias(site) <= 1.0
        assert report.bias_std(site) <= 0.5 + 1e-9


# ----------------------------------------------------------------------
# Phase classifier
# ----------------------------------------------------------------------


@settings(max_examples=60, deadline=None)
@given(values=st.lists(st.floats(0.0, 1.0), min_size=0, max_size=80))
def test_phase_classifier_total(values):
    verdict = classify_series(np.array(values))
    assert isinstance(verdict.shape, PhaseShape)
    assert verdict.crossings >= 0
    assert verdict.std >= 0.0


@settings(max_examples=40, deadline=None)
@given(
    level=st.floats(0.1, 0.9),
    n=st.integers(8, 60),
)
def test_constant_series_always_flat(level, n):
    verdict = classify_series(np.full(n, level))
    assert verdict.shape is PhaseShape.FLAT


@settings(max_examples=30, deadline=None)
@given(
    low=st.floats(0.05, 0.4),
    high=st.floats(0.6, 0.95),
    first=st.integers(6, 30),
    second=st.integers(6, 30),
)
def test_clean_step_never_flat(low, high, first, second):
    values = np.concatenate([np.full(first, low), np.full(second, high)])
    verdict = classify_series(values)
    assert verdict.shape is not PhaseShape.FLAT
    assert verdict.shape in (PhaseShape.LEVEL_SHIFT, PhaseShape.OSCILLATING,
                             PhaseShape.DRIFT)


# ----------------------------------------------------------------------
# Cost simulator
# ----------------------------------------------------------------------


@settings(max_examples=25, deadline=None)
@given(data=traces_with_sims())
def test_predicated_cost_is_exact(data):
    trace, sim = data
    costs = PredicationCosts()
    decisions = {site: AdvisorDecision.PREDICATE for site in range(trace.num_sites)}
    report = evaluate_policy(trace, sim, decisions, costs)
    assert report.total_cycles == pytest.approx(len(trace) * costs.exec_predicated)
    assert all(s.flushes == 0 for s in report.per_site.values())


@settings(max_examples=25, deadline=None)
@given(data=traces_with_sims())
def test_branch_cost_decomposition(data):
    trace, sim = data
    costs = PredicationCosts(exec_taken=2, exec_not_taken=7, misp_penalty=13)
    report = evaluate_policy(trace, sim, {}, costs)
    taken = int(trace.outcomes.sum())
    not_taken = len(trace) - taken
    mispredictions = len(trace) - int(sim.correct.sum())
    expected = 2 * taken + 7 * not_taken + 13 * mispredictions
    assert report.total_cycles == pytest.approx(expected)
    assert sum(s.flushes for s in report.per_site.values()) == mispredictions


@settings(max_examples=20, deadline=None)
@given(data=traces_with_sims())
def test_wish_bounded_by_per_execution_envelope(data):
    # With zero overhead, each wish execution costs either that execution's
    # branch cost or the predicated cost — so the total lies between the
    # per-execution oracle (min per execution) and pessimum (max per
    # execution).  Note the adaptive mix can legitimately BEAT both pure
    # static policies, so the pure totals are not valid bounds.
    trace, sim = data
    costs = PredicationCosts()
    decisions = {site: AdvisorDecision.WISH_BRANCH for site in range(trace.num_sites)}
    wish = evaluate_policy(trace, sim, decisions, costs, wish_overhead=0.0)

    lower = upper = 0.0
    for taken, ok in zip(trace.outcomes.tolist(), sim.correct.tolist()):
        branch_cost = (costs.exec_taken if taken else costs.exec_not_taken)
        if not ok:
            branch_cost += costs.misp_penalty
        lower += min(branch_cost, costs.exec_predicated)
        upper += max(branch_cost, costs.exec_predicated)
    assert lower - 1e-6 <= wish.total_cycles <= upper + 1e-6

# ----------------------------------------------------------------------
# Vectorized replay kernels
# ----------------------------------------------------------------------


@st.composite
def interleaved_counter_streams(draw):
    """Per-entry outcome queues riffled into one stream in a drawn order.

    The riffle preserves each entry's subsequence order, so any two draws
    with the same queues describe the *same* per-entry computation — which
    is exactly the invariance the segmented scan relies on.
    """
    num_entries = draw(st.integers(1, 6))
    queues = [
        draw(st.lists(st.integers(0, 1), max_size=40)) for _ in range(num_entries)
    ]
    initial = np.array(
        draw(st.lists(st.integers(0, 3), min_size=num_entries, max_size=num_entries)),
        dtype=np.uint8,
    )
    ids = [entry for entry, queue in enumerate(queues) for _ in queue]
    order = draw(st.permutations(ids))
    cursors = [0] * num_entries
    indices, outcomes = [], []
    for entry in order:
        indices.append(entry)
        outcomes.append(queues[entry][cursors[entry]])
        cursors[entry] += 1
    return (
        np.array(indices, dtype=np.int64),
        np.array(outcomes, dtype=np.uint8),
        initial,
        queues,
    )


def _naive_counter_replay(indices, outcomes, initial):
    table = initial.astype(np.int64).copy()
    before = np.empty(indices.size, dtype=np.uint8)
    for i, (entry, taken) in enumerate(zip(indices.tolist(), outcomes.tolist())):
        before[i] = table[entry]
        if taken:
            table[entry] = min(3, table[entry] + 1)
        else:
            table[entry] = max(0, table[entry] - 1)
    return before, table


@settings(max_examples=60, deadline=None)
@given(data=interleaved_counter_streams())
def test_counter_scan_matches_naive_and_is_riffle_invariant(data):
    indices, outcomes, initial, queues = data
    before, touched, finals = counter_scan(indices, outcomes, initial)

    naive_before, naive_table = _naive_counter_replay(indices, outcomes, initial)
    np.testing.assert_array_equal(before, naive_before)

    # Final states are a function of each entry's own queue alone — the
    # riffle order drawn for this example must not matter.
    for entry, queue in enumerate(queues):
        state = int(initial[entry])
        for taken in queue:
            state = min(3, state + 1) if taken else max(0, state - 1)
        if queue:
            assert entry in touched.tolist()
            assert int(finals[touched.tolist().index(entry)]) == state
        else:
            assert entry not in touched.tolist()
    assert len(touched) == len(set(touched.tolist()))


@settings(max_examples=60, deadline=None)
@given(
    outcomes=st.lists(st.integers(0, 1), max_size=80),
    bits=st.integers(1, 12),
    initial=st.integers(0, (1 << 12) - 1),
)
def test_gshare_history_matches_sequential_register(outcomes, bits, initial):
    mask = (1 << bits) - 1
    initial &= mask
    arr = np.array(outcomes, dtype=np.uint8)
    packed = gshare_history(arr, bits, mask, initial)

    register = initial
    for i, taken in enumerate(outcomes):
        assert int(packed[i]) == register, f"branch {i}"
        register = ((register << 1) | taken) & mask
    assert _final_history(arr, bits, mask, initial) == register


@settings(max_examples=60, deadline=None)
@given(
    pairs=st.lists(
        st.tuples(st.integers(0, 5), st.integers(0, 1)), max_size=80
    ),
    bits=st.integers(1, 10),
    seed=st.integers(0, 2**16),
)
def test_segmented_history_matches_per_key_registers(pairs, bits, seed):
    mask = (1 << bits) - 1
    rng = np.random.default_rng(seed)
    initials = rng.integers(0, mask + 1, size=6, dtype=np.int64)
    keys = np.array([k for k, _ in pairs], dtype=np.int64)
    outcomes = np.array([o for _, o in pairs], dtype=np.uint8)

    packed, touched, finals = segmented_history(keys, outcomes, bits, mask, initials)

    registers = {key: int(initials[key]) for key in range(6)}
    for i, (key, taken) in enumerate(pairs):
        assert int(packed[i]) == registers[key], f"branch {i}"
        registers[key] = ((registers[key] << 1) | taken) & mask
    touched_list = touched.tolist()
    assert sorted(touched_list) == sorted(set(keys.tolist()))
    for key, final in zip(touched_list, finals.tolist()):
        assert registers[key] == int(final)


@settings(max_examples=25, deadline=None)
@given(data=traces_with_sims(max_sites=5, max_len=200))
def test_perceptron_integer_weight_replay(data):
    trace, _sim = data
    ref_pred = Perceptron(num_entries=3, history_bits=6)
    vec_pred = Perceptron(num_entries=3, history_bits=6)
    ref = simulate_reference(ref_pred, trace)
    vec = try_simulate_vectorized(vec_pred, trace)
    assert vec is not None
    np.testing.assert_array_equal(ref.correct, vec.correct)
    np.testing.assert_array_equal(ref_pred.weights, vec_pred.weights)
    np.testing.assert_array_equal(ref_pred.history, vec_pred.history)
