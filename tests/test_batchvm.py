"""Lockstep batch VM: serial/batch differential and edge-case parity.

The contract under test is absolute: for every eligible program, the
batch VM's per-lane traces, instruction counts, return values, outputs,
and *errors* are bit-identical to running each lane through the serial
:class:`~repro.vm.machine.Machine`.  The first half checks that on the
shipped workloads across seeded input populations; the second half pins
the serial VM's nastiest edge semantics (fuel exhaustion mid-call,
out-of-range indexing, shift-count masking, C-style truncating division)
and the per-lane int64-overflow withdrawal path.

``REPRO_BATCHVM_FULL=1`` (the CI batchvm-smoke job) widens every
workload's population to the full 16 lanes; the tier-1 defaults keep the
recursion-heavy workloads small so the suite stays fast.
"""

from __future__ import annotations

import os

import numpy as np
import pytest

from repro.errors import ExperimentError, FuelExhausted, VMRuntimeError
from repro.lang import compile_source
from repro.sweep import PopulationSpec, generate_population
from repro.trace.capture import capture_trace, capture_traces
from repro.vm import InputSet, Machine
from repro.vm.batch import BatchFallback, BatchMachine, plan_program
from repro.workloads import all_workloads, get_workload

_FULL = os.environ.get("REPRO_BATCHVM_FULL", "") == "1"

#: Tier-1 (lanes, scale) per workload; the SIMT batch VM shatters on the
#: recursion-heavy workloads, so those get small populations by default.
_TIER1 = {
    "bzipish": (6, 0.02),
    "gzipish": (8, 0.03),
    "twolfish": (6, 0.03),
    "gapish": (8, 0.03),
    "craftyish": (2, 0.01),
    "parserish": (6, 0.02),
    "mcfish": (8, 0.03),
    "gccish": (6, 0.03),
    "vprish": (4, 0.02),
    "vortexish": (8, 0.03),
    "perlish": (8, 0.03),
    "eonish": (8, 0.03),
}


def _population(workload: str) -> PopulationSpec:
    lanes, scale = _TIER1[workload]
    if _FULL:
        lanes = 16
    return PopulationSpec(workload=workload, base_input="ref",
                          size=lanes, seed=5, scale=scale)


def _assert_traces_identical(batch, serial):
    assert len(batch) == len(serial)
    for got, want in zip(batch, serial):
        assert got.instructions == want.instructions
        np.testing.assert_array_equal(got.sites, want.sites)
        np.testing.assert_array_equal(got.outcomes, want.outcomes)


@pytest.mark.parametrize("workload", sorted(_TIER1))
def test_workload_population_differential(workload, monkeypatch):
    """Batch traces are bit-identical to serial across an input population."""
    assert _TIER1.keys() == {wl.name for wl in all_workloads()}, (
        "differential must cover every shipped workload")
    # Hard-require the batch path: a silent serial fallback would make
    # this test vacuous.
    monkeypatch.setenv("REPRO_REQUIRE_BATCH_VM", "1")
    spec = _population(workload)
    program = get_workload(workload).program()
    input_sets = generate_population(spec)
    batch = capture_traces(program, input_sets)
    serial = [capture_trace(program, s) for s in input_sets]
    _assert_traces_identical(batch, serial)


class TestRequireBatchEnv:
    SOURCE = "func main() { var i = 0; while (i < arg(0)) { i = i + 1; } return i; }"

    def test_eligible_program_runs_batched(self, monkeypatch):
        monkeypatch.setenv("REPRO_REQUIRE_BATCH_VM", "1")
        program = compile_source(self.SOURCE, name="tiny")
        sets = [InputSet.make(f"i{k}", args=[k]) for k in (3, 5, 9)]
        traces = capture_traces(program, sets)
        assert [t.instructions for t in traces] == \
            [capture_trace(program, s).instructions for s in sets]

    def test_unset_and_zero_do_not_require(self, monkeypatch):
        from repro.trace.capture import _batch_required

        monkeypatch.delenv("REPRO_REQUIRE_BATCH_VM", raising=False)
        assert not _batch_required("anything")
        monkeypatch.setenv("REPRO_REQUIRE_BATCH_VM", "0")
        assert not _batch_required("anything")

    def test_named_list_requires_only_named(self, monkeypatch):
        from repro.trace.capture import _batch_required

        monkeypatch.setenv("REPRO_REQUIRE_BATCH_VM", "gapish, mcfish")
        assert _batch_required("gapish")
        assert _batch_required("mcfish")
        assert not _batch_required("craftyish")

    def test_ineligible_program_fails_when_required(self, monkeypatch):
        # Inputs with magnitude >= 2**62 are rejected at lane load time,
        # making the whole batch fall back.
        monkeypatch.setenv("REPRO_REQUIRE_BATCH_VM", "1")
        program = compile_source(
            "func main() { return arg(0); }", name="hugearg")
        sets = [InputSet.make("big", args=[1 << 62])]
        with pytest.raises(ExperimentError, match="REPRO_REQUIRE_BATCH_VM"):
            capture_traces(program, sets)
        monkeypatch.setenv("REPRO_REQUIRE_BATCH_VM", "0")
        traces = capture_traces(program, sets)  # silent serial fallback
        assert len(traces) == 1


class TestEdgeParity:
    """Serial-VM edge semantics honored identically by the batch VM."""

    def _run_both(self, source, input_sets, fuel=None):
        program = compile_source(source, name="edge")
        assert plan_program(program).eligible, plan_program(program).reason
        kwargs = {"fuel": fuel} if fuel is not None else {}
        batch = BatchMachine(program, **kwargs).run_lanes(input_sets, mode="trace")
        serial = []
        for s in input_sets:
            try:
                serial.append(Machine(program, **kwargs).run(s, mode="trace"))
            except (VMRuntimeError, FuelExhausted) as exc:
                serial.append(exc)
        return batch, serial

    def _assert_parity(self, batch, serial, fallback=()):
        assert batch.fallback_lanes == sorted(fallback)
        for lane, want in enumerate(serial):
            if lane in fallback:
                # Withdrawn to the serial VM, not faulted: nothing to
                # compare here (capture_traces parity is checked by the
                # caller / test_overflow_lane_withdraws_not_faults).
                assert batch.results[lane] is None
                assert batch.errors[lane] is None
                continue
            if isinstance(want, Exception):
                got = batch.errors[lane]
                assert got is not None, f"lane {lane}: serial raised, batch ran"
                assert type(got) is type(want)
                assert str(got) == str(want)
                if isinstance(want, FuelExhausted):
                    assert got.executed == want.executed
            else:
                got = batch.results[lane]
                assert got is not None, f"lane {lane}: batch faulted: {batch.errors[lane]}"
                assert got.return_value == want.return_value
                assert list(got.output) == list(want.output)
                assert got.instructions == want.instructions
                assert got.branches == want.branches
                np.testing.assert_array_equal(
                    np.asarray(got.packed_trace), np.asarray(want.packed_trace))

    def test_fuel_exhaustion_mid_call(self):
        # Lanes burn fuel at different rates and die inside the callee at
        # different depths; FuelExhausted.executed must match exactly.
        source = """
        func burn(n) {
            var i = 0;
            var acc = 0;
            while (i < n) { acc = acc + i; i = i + 1; }
            return acc;
        }
        func main() {
            var total = 0;
            var j = 0;
            while (j < 50) { total = total + burn(arg(0)); j = j + 1; }
            return total;
        }
        """
        sets = [InputSet.make(f"l{k}", args=[k]) for k in (1, 7, 40, 200)]
        batch, serial = self._run_both(source, sets, fuel=6000)
        assert any(isinstance(s, FuelExhausted) for s in serial)
        assert any(not isinstance(s, Exception) for s in serial)
        self._assert_parity(batch, serial)

    def test_out_of_range_indexing(self):
        # Some lanes index in range, some out; error strings must match
        # the serial VM byte for byte.
        source = """
        global data[4];
        func main() {
            data[0] = 11;
            return data[arg(0)];
        }
        """
        sets = [InputSet.make(f"l{k}", args=[k]) for k in (0, 3, 4, -1, 100)]
        batch, serial = self._run_both(source, sets)
        assert sum(isinstance(s, VMRuntimeError) for s in serial) == 3
        self._assert_parity(batch, serial)

    def test_shift_count_masking(self):
        # Shift counts are masked to 6 bits like x86-64 shifts.
        source = """
        func main() {
            output(1 << arg(0));
            output(1000 >> arg(0));
            return (arg(1) << arg(0)) + (arg(1) >> arg(0));
        }
        """
        shifts = (0, 1, 5, 63, 64, 65, 130)
        sets = [InputSet.make(f"l{k}", args=[k, 3]) for k in shifts]
        batch, serial = self._run_both(source, sets)
        # shift=63 overflows int64 (1 << 63), so that one lane withdraws
        # to the serial VM; masked shifts (64 -> 0, 65 -> 1, 130 -> 2)
        # stay in-bounds and must match exactly.
        self._assert_parity(batch, serial, fallback=[shifts.index(63)])
        program = compile_source(source, name="edge")
        _assert_traces_identical(
            capture_traces(program, sets),
            [capture_trace(program, s) for s in sets])

    def test_truncating_division_on_negatives(self):
        # Minic division truncates toward zero (C semantics), unlike
        # Python's floor division; mod takes the dividend's sign.
        source = """
        func main() {
            var a = arg(0);
            var b = arg(1);
            output(a / b);
            output(a % b);
            return (a / b) * b + (a % b) - a;
        }
        """
        cases = [(7, 2), (-7, 2), (7, -2), (-7, -2), (-1, 3), (1, -3), (0, -5)]
        sets = [InputSet.make(f"l{i}", args=list(c)) for i, c in enumerate(cases)]
        batch, serial = self._run_both(source, sets)
        for s in serial:
            assert not isinstance(s, Exception)
            assert s.return_value == 0  # the div/mod identity holds
        self._assert_parity(batch, serial)

    def test_division_by_zero_parity(self):
        source = "func main() { return arg(0) / arg(1) + arg(0) % 1; }"
        sets = [InputSet.make("ok", args=[8, 2]), InputSet.make("boom", args=[8, 0])]
        batch, serial = self._run_both(source, sets)
        assert isinstance(serial[1], VMRuntimeError)
        assert "division by zero" in str(serial[1])
        self._assert_parity(batch, serial)

    def test_overflow_lane_withdraws_not_faults(self):
        # The serial VM computes with unbounded ints; a lane whose
        # arithmetic leaves int64 must withdraw (fallback), never fault
        # or silently wrap.  capture_traces re-runs it serially.
        source = """
        func main() {
            var a = arg(0);
            var i = 0;
            var acc = 1;
            while (i < 4) { acc = acc * a; i = i + 1; }
            return acc % 1000007;
        }
        """
        program = compile_source(source, name="overflow")
        assert plan_program(program).eligible
        sets = [InputSet.make("small", args=[7]),
                InputSet.make("big", args=[1 << 20])]  # (2**20)**4 = 2**80
        batch = BatchMachine(program).run_lanes(sets, mode="trace")
        assert batch.fallback_lanes == [1]
        assert batch.results[0] is not None and batch.errors[1] is None
        # capture_traces hides the withdrawal: results identical to serial.
        traces = capture_traces(program, sets)
        serial = [capture_trace(program, s) for s in sets]
        _assert_traces_identical(traces, serial)
        expected = Machine(program).run(sets[1]).return_value
        assert expected == pow(1 << 20, 4) % 1000007

    def test_rng_parity(self):
        # The LCG stream and srand reseeding must match lane for lane.
        source = """
        func main() {
            srand(arg(0));
            var i = 0;
            var acc = 0;
            while (i < 20) {
                if (rand() % 3 == 0) { acc = acc + 1; }
                i = i + 1;
            }
            return acc;
        }
        """
        sets = [InputSet.make(f"l{k}", args=[k]) for k in (0, 1, 12345, 999999)]
        batch, serial = self._run_both(source, sets)
        self._assert_parity(batch, serial)


def test_capture_traces_matches_serial_loop():
    """The documented equivalence: capture_traces == [capture_trace...]."""
    workload = get_workload("mcfish")
    program = workload.program()
    sets = [workload.make_input("train", 0.05),
            workload.make_input("ref", 0.05),
            workload.make_input("train", 0.05)]  # duplicates allowed
    batch = capture_traces(program, sets)
    serial = [capture_trace(program, s) for s in sets]
    _assert_traces_identical(batch, serial)
    assert capture_traces(program, []) == []


def test_batch_fallback_is_not_an_error():
    """A whole-batch fallback still yields correct serial traces."""
    program = compile_source("func main() { return input(0); }", name="hugeinput")
    sets = [InputSet.make("big", data=[1 << 62])]
    with pytest.raises(BatchFallback):
        BatchMachine(program).run_lanes(sets, mode="trace")
    traces = capture_traces(program, sets)
    assert len(traces) == 1
