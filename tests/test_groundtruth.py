"""Tests for ground-truth input-dependence definitions."""

import numpy as np
import pytest

from repro.core.groundtruth import (
    GroundTruth,
    accuracy_delta_map,
    dynamic_dependent_fraction,
    ground_truth,
)
from repro.predictors.simulate import SimulationResult


def make_sim(accuracies: dict[int, float], executions: int = 100, num_sites: int = 8):
    """Fabricate a SimulationResult with chosen per-site accuracies."""
    exec_counts = np.zeros(num_sites, dtype=np.int64)
    correct_counts = np.zeros(num_sites, dtype=np.int64)
    for site, accuracy in accuracies.items():
        exec_counts[site] = executions
        correct_counts[site] = round(accuracy * executions)
    return SimulationResult(
        predictor_name="fake",
        num_sites=num_sites,
        correct=np.zeros(0, dtype=np.uint8),
        exec_counts=exec_counts,
        correct_counts=correct_counts,
    )


class TestDeltaMap:
    def test_delta_values(self):
        train = make_sim({0: 0.90, 1: 0.80})
        other = make_sim({0: 0.84, 1: 0.80})
        deltas = accuracy_delta_map(train, other)
        assert deltas[0] == pytest.approx(0.06)
        assert deltas[1] == pytest.approx(0.0)

    def test_only_common_sites_compared(self):
        train = make_sim({0: 0.9, 1: 0.9})
        other = make_sim({1: 0.5, 2: 0.5})
        assert set(accuracy_delta_map(train, other)) == {1}

    def test_min_executions_filters(self):
        train = make_sim({0: 0.9}, executions=5)
        other = make_sim({0: 0.5}, executions=5)
        assert accuracy_delta_map(train, other, min_executions=10) == {}


class TestGroundTruth:
    def test_five_percent_threshold(self):
        # The paper's example: 80% vs 85.1% -> input-dependent (delta 5.1%).
        train = make_sim({0: 0.800, 1: 0.800}, executions=1000)
        other = make_sim({0: 0.851, 1: 0.845}, executions=1000)
        truth = ground_truth(train, [other])
        assert truth.dependent == {0}
        assert truth.independent == {1}

    def test_universe_partition(self):
        train = make_sim({0: 0.9, 1: 0.6, 2: 0.7})
        other = make_sim({0: 0.9, 1: 0.9, 2: 0.7})
        truth = ground_truth(train, [other])
        assert truth.dependent | truth.independent == truth.universe
        assert truth.dependent & truth.independent == set()

    def test_union_over_input_sets_grows(self):
        train = make_sim({0: 0.9, 1: 0.9})
        same = make_sim({0: 0.9, 1: 0.9})
        different = make_sim({0: 0.5, 1: 0.9})
        base = ground_truth(train, [same])
        extended = ground_truth(train, [same, different])
        assert base.dependent == set()
        assert extended.dependent == {0}
        assert len(extended.dependent) >= len(base.dependent)

    def test_union_removes_from_independent(self):
        train = make_sim({0: 0.9})
        similar = make_sim({0: 0.9})
        shifted = make_sim({0: 0.7})
        truth = ground_truth(train, [similar, shifted])
        assert truth.dependent == {0}
        assert truth.independent == set()

    def test_requires_other_inputs(self):
        with pytest.raises(ValueError):
            ground_truth(make_sim({0: 0.9}), [])

    def test_dependent_fraction(self):
        truth = GroundTruth(dependent={0, 1}, independent={2, 3, 4, 5},
                            universe={0, 1, 2, 3, 4, 5})
        assert truth.dependent_fraction == pytest.approx(2 / 6)

    def test_empty_universe_fraction(self):
        assert GroundTruth().dependent_fraction == 0.0


class TestDynamicFraction:
    def test_weighted_by_executions(self):
        reference = make_sim({0: 0.9, 1: 0.9}, executions=100)
        reference.exec_counts[0] = 300  # Site 0 executes 3x as often.
        truth = GroundTruth(dependent={0}, independent={1}, universe={0, 1})
        assert dynamic_dependent_fraction(reference, truth) == pytest.approx(0.75)

    def test_empty_reference(self):
        reference = make_sim({})
        truth = GroundTruth(dependent={0}, universe={0})
        assert dynamic_dependent_fraction(reference, truth) == 0.0
