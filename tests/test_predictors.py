"""Unit tests for the branch predictor zoo.

Each predictor is checked on the signature behaviours it exists for:
bimodal learns bias, gshare learns global patterns, the local predictor
learns per-branch periodicity, the loop predictor learns trip counts, the
perceptron learns linearly separable correlations, and the tournament
predictor tracks its better component.
"""

import numpy as np
import pytest

from repro.predictors import (
    PREDICTOR_FACTORIES,
    AlwaysNotTaken,
    AlwaysTaken,
    Bimodal,
    GAg,
    Gshare,
    LocalTwoLevel,
    LoopPredictor,
    Perceptron,
    ProfileStatic,
    Tournament,
    make_predictor,
    paper_gshare,
    paper_perceptron,
    simulate,
)
from repro.trace.synthetic import (
    SiteSpec,
    bernoulli_site,
    interleave_sites,
    loop_site,
    pattern_site,
)


def accuracy(predictor, outcomes, site=0):
    predictor.reset()
    correct = sum(
        predictor.predict_and_update(site, int(t)) == int(t) for t in outcomes
    )
    return correct / len(outcomes)


class TestStaticPredictors:
    def test_always_taken(self):
        assert accuracy(AlwaysTaken(), [1, 1, 0, 1]) == 0.75

    def test_always_not_taken(self):
        assert accuracy(AlwaysNotTaken(), [0, 0, 1, 0]) == 0.75

    def test_profile_static_directions(self):
        predictor = ProfileStatic({0: 1, 1: 0})
        assert predictor.predict_and_update(0, 0) == 1
        assert predictor.predict_and_update(1, 1) == 0
        assert predictor.predict_and_update(99, 0) == 1  # fallback

    def test_profile_static_from_bias(self):
        predictor = ProfileStatic.from_bias({0: 0.9, 1: 0.2})
        assert predictor.directions == {0: 1, 1: 0}


class TestBimodal:
    def test_learns_strong_bias(self):
        outcomes = bernoulli_site(5000, SiteSpec.stationary(0.95), seed=1)
        assert accuracy(Bimodal(), outcomes) > 0.9

    def test_accuracy_between_chance_and_max_bias(self):
        # A 2-bit counter on iid Bernoulli(p) dithers: its accuracy lands
        # strictly between 0.5 and max(p, 1-p).
        outcomes = bernoulli_site(20_000, SiteSpec.stationary(0.3), seed=2)
        acc = accuracy(Bimodal(), outcomes)
        assert 0.55 < acc <= 0.71

    def test_counter_saturation_bounds(self):
        predictor = Bimodal(table_bits=2)
        for _ in range(10):
            predictor.predict_and_update(0, 1)
        assert max(predictor.table) <= 3
        for _ in range(10):
            predictor.predict_and_update(0, 0)
        assert min(predictor.table) >= 0

    def test_reset_restores_weakly_taken(self):
        predictor = Bimodal(table_bits=3)
        predictor.predict_and_update(0, 0)
        predictor.reset()
        assert all(c == 2 for c in predictor.table)

    def test_invalid_config(self):
        with pytest.raises(ValueError):
            Bimodal(table_bits=0)


class TestGshare:
    def test_learns_global_pattern(self):
        # TTN repeating: global history disambiguates perfectly.
        outcomes = pattern_site("TTN", 3000)
        assert accuracy(paper_gshare(), outcomes) > 0.98

    def test_paper_configuration_size(self):
        predictor = paper_gshare()
        assert predictor.history_bits == 14
        assert predictor.size == 1 << 14  # 2-bit counters -> 4 KB
        assert "4096 bytes" in predictor.describe()

    def test_history_wraps_in_mask(self):
        predictor = Gshare(history_bits=4)
        for _ in range(100):
            predictor.predict_and_update(0, 1)
        assert predictor.history <= predictor.mask

    def test_table_bits_must_cover_history(self):
        with pytest.raises(ValueError):
            Gshare(history_bits=10, table_bits=8)

    def test_reset(self):
        predictor = Gshare(history_bits=6)
        predictor.predict_and_update(3, 1)
        predictor.reset()
        assert predictor.history == 0 and all(c == 2 for c in predictor.table)


class TestGAg:
    def test_learns_alternation(self):
        outcomes = pattern_site("TN", 2000)
        assert accuracy(GAg(history_bits=8), outcomes) > 0.95

    def test_aliasing_across_sites(self):
        # GAg has no address component: two sites with identical history
        # share table entries, unlike gshare.
        gag = GAg(history_bits=6)
        gshare = Gshare(history_bits=6)
        streams = {0: pattern_site("TTTN", 500), 1: pattern_site("NNTT", 500)}
        trace = interleave_sites(streams, seed=7)
        acc_gag = simulate(gag, trace).overall_accuracy
        acc_gshare = simulate(gshare, trace).overall_accuracy
        assert acc_gshare >= acc_gag - 0.02


class TestLocalTwoLevel:
    def test_learns_per_branch_period(self):
        outcomes = pattern_site("TTNN", 2500)
        assert accuracy(LocalTwoLevel(history_bits=8), outcomes) > 0.95

    def test_invalid_config(self):
        with pytest.raises(ValueError):
            LocalTwoLevel(history_bits=0)
        with pytest.raises(ValueError):
            LocalTwoLevel(num_histories=0)


class TestLoopPredictor:
    def test_constant_trip_count_near_perfect(self):
        outcomes = loop_site([8] * 500)
        assert accuracy(LoopPredictor(), outcomes) > 0.99

    def test_variable_trip_counts_degrade(self):
        rng = np.random.default_rng(8)
        outcomes = loop_site([int(rng.integers(2, 20)) for _ in range(300)])
        acc = accuracy(LoopPredictor(), outcomes)
        assert acc < 0.99  # Cannot lock onto a trip count.

    def test_reset_clears_confidence(self):
        predictor = LoopPredictor(num_entries=4)
        for t in loop_site([5] * 10):
            predictor.predict_and_update(0, int(t))
        predictor.reset()
        assert predictor.entries[0].confidence == 0


class TestPerceptron:
    def test_paper_configuration(self):
        predictor = paper_perceptron()
        assert predictor.num_entries == 457
        assert predictor.history_bits == 36
        assert predictor.theta == int(1.93 * 36 + 14)

    def test_learns_history_correlation(self):
        # Outcome = outcome 2 branches ago: linearly separable in history.
        rng = np.random.default_rng(9)
        history = [1, 0]
        outcomes = []
        for _ in range(4000):
            nxt = history[-2]
            outcomes.append(nxt)
            history.append(nxt if rng.random() > 0.02 else 1 - nxt)
        assert accuracy(Perceptron(num_entries=64, history_bits=8), outcomes) > 0.9

    def test_weights_clamped(self):
        predictor = Perceptron(num_entries=4, history_bits=4, weight_bits=4)
        for _ in range(200):
            predictor.predict_and_update(0, 1)
        assert predictor.weights.max() <= 7
        assert predictor.weights.min() >= -8

    def test_reset(self):
        predictor = Perceptron(num_entries=8, history_bits=4)
        predictor.predict_and_update(0, 1)
        predictor.reset()
        assert not predictor.weights.any()
        assert (predictor.history == 1).all()


class TestTournament:
    def test_beats_or_matches_worst_component(self):
        streams = {
            0: bernoulli_site(4000, SiteSpec.stationary(0.95), seed=10),
            1: pattern_site("TTN", 1334)[:4000],
        }
        trace = interleave_sites(streams, seed=11)
        acc_tournament = simulate(Tournament(history_bits=10), trace).overall_accuracy
        acc_bimodal = simulate(Bimodal(table_bits=10), trace).overall_accuracy
        acc_gshare = simulate(Gshare(history_bits=10), trace).overall_accuracy
        assert acc_tournament >= min(acc_bimodal, acc_gshare) - 0.02

    def test_reset(self):
        predictor = Tournament(history_bits=6, chooser_bits=6)
        predictor.predict_and_update(0, 1)
        predictor.reset()
        assert all(c == 2 for c in predictor.chooser)


class TestRegistry:
    def test_all_registry_names_construct(self):
        for name in PREDICTOR_FACTORIES:
            predictor = make_predictor(name)
            predictor.predict_and_update(0, 1)
            predictor.reset()

    def test_unknown_name_rejected(self):
        with pytest.raises(ValueError, match="unknown predictor"):
            make_predictor("neural-oracle")

    def test_describe_is_informative(self):
        for name in ("bimodal", "gshare", "perceptron", "tournament", "loop"):
            assert len(make_predictor(name).describe()) > 10


class TestSimulate:
    def test_aggregates_consistent(self):
        trace = interleave_sites({0: pattern_site("TN", 100), 1: pattern_site("T", 50)}, seed=12)
        result = simulate(Bimodal(), trace)
        assert result.num_branches == len(trace)
        assert result.exec_counts.sum() == len(trace)
        assert result.correct_counts.sum() == result.correct.sum()
        assert 0.0 <= result.overall_accuracy <= 1.0

    def test_site_accuracies_min_executions(self):
        trace = interleave_sites({0: pattern_site("T", 100), 1: pattern_site("T", 3)}, seed=13)
        result = simulate(AlwaysTaken(), trace)
        assert set(result.site_accuracies(min_executions=10)) == {0}

    def test_site_accuracy_unexecuted_raises(self):
        trace = interleave_sites({0: pattern_site("T", 10)}, seed=14)
        result = simulate(AlwaysTaken(), trace)
        with pytest.raises(KeyError):
            result.site_accuracy(5)

    def test_always_taken_accuracy_is_taken_rate(self):
        outcomes = bernoulli_site(2000, SiteSpec.stationary(0.7), seed=15)
        trace = interleave_sites({0: outcomes}, seed=15)
        result = simulate(AlwaysTaken(), trace)
        assert result.overall_accuracy == pytest.approx(outcomes.mean())

    def test_reset_flag_controls_warm_state(self):
        trace = interleave_sites({0: pattern_site("TTN", 200)}, seed=16)
        predictor = Gshare(history_bits=8)
        first = simulate(predictor, trace)
        warm = simulate(predictor, trace, reset=False)
        assert warm.overall_accuracy >= first.overall_accuracy

    def test_empty_trace(self):
        trace = interleave_sites({}, seed=17)
        result = simulate(Bimodal(), trace)
        assert result.num_branches == 0
        assert result.overall_accuracy == 0.0
